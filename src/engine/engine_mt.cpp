#include "engine/engine_mt.hpp"

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace cbip {

namespace {

// Telemetry (src/obs): counts only, never steers.
const obs::Counter g_mtSteps("engine.mt.steps");
const obs::Histogram g_mtBatchSize("engine.mt.batch_size");

/// Command sent from the engine to a component worker thread.
struct ExecuteCommand {
  int transition = 0;                // global transition index in the type
  std::vector<Value> varsAfterDown;  // component vars after connector "down"
};

/// One worker thread per component instance. The worker owns the mutable
/// AtomicState; the engine only ever sees copies it reports back.
class Worker {
 public:
  Worker(const AtomicType& type, AtomicState initial, std::uint64_t grain)
      : type_(&type), state_(std::move(initial)), grain_(grain) {
    runInternal(*type_, state_);
    thread_ = std::jthread([this](std::stop_token st) { loop(st); });
  }

  /// Snapshot of the worker's state; only called by the engine when no
  /// command is in flight for this worker.
  AtomicState snapshot() {
    const std::scoped_lock lock(mutex_);
    return state_;
  }

  void dispatch(ExecuteCommand cmd) {
    {
      const std::scoped_lock lock(mutex_);
      require(!command_.has_value() && !busy_, "Worker: command already in flight");
      command_ = std::move(cmd);
    }
    cv_.notify_all();
  }

  /// Blocks until the last dispatched command finished.
  void wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return !command_.has_value() && !busy_; });
  }

  void stop() {
    thread_.request_stop();
    cv_.notify_all();
  }

 private:
  void loop(const std::stop_token& st) {
    while (true) {
      ExecuteCommand cmd;
      AtomicState work;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this, &st] { return command_.has_value() || st.stop_requested(); });
        if (!command_.has_value()) return;  // stop requested
        cmd = std::move(*command_);
        command_.reset();
        busy_ = true;
        work = state_;
      }
      // Execute outside the lock: this is the parallel section.
      work.vars = std::move(cmd.varsAfterDown);
      fire(*type_, work, cmd.transition);
      runInternal(*type_, work);
      spin();
      {
        const std::scoped_lock lock(mutex_);
        state_ = std::move(work);
        busy_ = false;
      }
      cv_.notify_all();
    }
  }

  void spin() const {
    volatile std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < grain_; ++i) sink = sink + i;
  }

  const AtomicType* type_;
  AtomicState state_;
  std::uint64_t grain_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::optional<ExecuteCommand> command_;
  bool busy_ = false;
  std::jthread thread_;
};

/// Footprint of an interaction = every instance attached to its connector
/// (guards may read non-participating ends, so the whole connector
/// conflicts).
std::vector<int> footprint(const System& system, const EnabledInteraction& ei) {
  std::vector<int> out;
  const Connector& c = system.connector(static_cast<std::size_t>(ei.connector));
  out.reserve(c.endCount());
  for (const ConnectorEnd& e : c.ends()) out.push_back(e.port.instance);
  return out;
}

bool overlaps(const std::vector<int>& instances, const std::vector<bool>& used) {
  for (int i : instances) {
    if (used[static_cast<std::size_t>(i)]) return true;
  }
  return false;
}

}  // namespace

MultiThreadEngine::MultiThreadEngine(const System& system, SchedulingPolicy& policy)
    : system_(&system), policy_(&policy) {
  system.validate();
  // Warm every lazy index and program while still single-threaded: run()
  // only evaluates them from the engine thread, but the build must not
  // race with a concurrently constructed sibling engine sharing the
  // System. Compiled programs are skipped when the interpreter escape
  // hatch is active: that path must not depend on the compiler building.
  system.warmIndices();
}

RunResult MultiThreadEngine::run(const EngineOptions& options) {
  MtOptions full = defaults_;
  static_cast<EngineOptions&>(full) = options;
  return run(full);
}

RunResult MultiThreadEngine::run(const MtOptions& options) {
  stats_ = RunStats{};
  const auto wall0 = std::chrono::steady_clock::now();
  const System& system = *system_;
  const std::size_t n = system.instanceCount();

  // Compilation may have been switched on after construction (the
  // differential tests toggle it): re-warm now, while still
  // single-threaded, so workers only ever read.
  system.warmIndices();
  require(system.indicesWarm(), "MultiThreadEngine: indices must be warm before workers start");

  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers.push_back(std::make_unique<Worker>(
        *system.instance(i).type, initialState(*system.instance(i).type), options.workGrain));
  }

  const bool hasPriorities = system.maximalProgress() || !system.priorities().empty();
  const std::size_t maxBatch =
      hasPriorities ? 1 : (options.maxBatch == 0 ? n : options.maxBatch);

  RunResult result;
  GlobalState snapshot;
  snapshot.components.resize(n);
  for (std::size_t i = 0; i < n; ++i) snapshot.components[i] = workers[i]->snapshot();

  std::optional<EnabledInteractionCache> cache;
  if (options.incrementalCache) {
    cache.emplace(system);
    cache->reset(snapshot);
  }

  std::uint64_t executed = 0;
  result.reason = StopReason::kStepLimit;
  while (executed < options.maxSteps) {
    // One scheduling cycle (RunStats::scanRounds): scan, pick a batch,
    // dispatch, re-synchronize.
    ++stats_.scanRounds;
    // Batch selection consumes the vector, so the cached set is copied.
    std::vector<EnabledInteraction> enabled =
        cache ? cache->enabled() : enabledInteractions(system, snapshot);
    if (enabled.empty()) {
      result.reason = StopReason::kDeadlock;
      break;
    }
    enabled = applyPriorities(system, snapshot, std::move(enabled));

    // Select a batch of pairwise-independent interactions.
    struct Selected {
      EnabledInteraction interaction;
      std::vector<int> choice;
    };
    std::vector<Selected> batch;
    std::vector<bool> used(n, false);
    std::vector<EnabledInteraction> candidates = std::move(enabled);
    while (!candidates.empty() && batch.size() < maxBatch &&
           executed + batch.size() < options.maxSteps) {
      const auto [idx, choice] = policy_->pick(system, snapshot, candidates);
      require(idx < candidates.size(), "SchedulingPolicy returned out-of-range interaction");
      const EnabledInteraction picked = candidates[idx];
      for (int i : footprint(system, picked)) used[static_cast<std::size_t>(i)] = true;
      batch.push_back(Selected{picked, choice});
      std::vector<EnabledInteraction> rest;
      for (std::size_t k = 0; k < candidates.size(); ++k) {
        if (k == idx) continue;
        if (!overlaps(footprint(system, candidates[k]), used)) {
          rest.push_back(std::move(candidates[k]));
        }
      }
      candidates = std::move(rest);
    }

    g_mtSteps.add(batch.size());
    g_mtBatchSize.observe(static_cast<std::int64_t>(batch.size()));

    // Connector data transfer centrally, then parallel dispatch.
    std::vector<int> dispatched;
    for (const Selected& sel : batch) {
      const EnabledInteraction& ei = sel.interaction;
      const Connector& c = system.connector(static_cast<std::size_t>(ei.connector));
      connectorTransfer(system, snapshot, ei);
      for (std::size_t k = 0; k < ei.ends.size(); ++k) {
        const ConnectorEnd& end = c.end(static_cast<std::size_t>(ei.ends[k]));
        const int inst = end.port.instance;
        const int transition = ei.choices[k][static_cast<std::size_t>(sel.choice[k])];
        workers[static_cast<std::size_t>(inst)]->dispatch(ExecuteCommand{
            transition, snapshot.components[static_cast<std::size_t>(inst)].vars});
        dispatched.push_back(inst);
      }
      if (options.recordTrace) {
        result.trace.events.push_back(
            TraceEvent{executed, ei.connector, ei.mask, interactionLabel(system, ei)});
      }
      ++executed;
    }

    // Barrier: wait for all dispatched workers, then refresh their states.
    for (int inst : dispatched) workers[static_cast<std::size_t>(inst)]->wait();
    for (int inst : dispatched) {
      snapshot.components[static_cast<std::size_t>(inst)] =
          workers[static_cast<std::size_t>(inst)]->snapshot();
    }
    // Only the dispatched instances changed, so they are the dirty set.
    if (cache) cache->update(snapshot, dispatched);
  }

  for (auto& w : workers) w->stop();
  result.steps = executed;
  result.finalState = std::move(snapshot);
  stats_.steps = executed;
  stats_.wallNs = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall0)
          .count());
  return result;
}

}  // namespace cbip
