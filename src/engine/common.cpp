#include "engine/common.hpp"

#include <ostream>

namespace cbip {

std::pair<std::size_t, std::vector<int>> RandomPolicy::pick(
    const System&, const GlobalState&, const std::vector<EnabledInteraction>& enabled) {
  const std::size_t i = rng_.index(enabled.size());
  const EnabledInteraction& ei = enabled[i];
  std::vector<int> choice;
  choice.reserve(ei.choices.size());
  for (const std::vector<int>& options : ei.choices) {
    choice.push_back(static_cast<int>(rng_.index(options.size())));
  }
  return {i, std::move(choice)};
}

std::pair<std::size_t, std::vector<int>> FirstPolicy::pick(
    const System&, const GlobalState&, const std::vector<EnabledInteraction>& enabled) {
  return {0, std::vector<int>(enabled.front().choices.size(), 0)};
}

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kStepLimit: return "kStepLimit";
    case StopReason::kDeadlock: return "kDeadlock";
    case StopReason::kPredicate: return "kPredicate";
  }
  return "<invalid StopReason>";
}

std::ostream& operator<<(std::ostream& os, StopReason reason) {
  return os << to_string(reason);
}

}  // namespace cbip
