#include "engine/engine.hpp"

#include <chrono>

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace cbip {

namespace {
// Telemetry (src/obs): counts only, never steers — traces are
// bit-identical with observability on, off, or compiled out.
const obs::Counter g_seqSteps("engine.seq.steps");
const obs::Counter g_seqRuns("engine.seq.runs");
}  // namespace

SequentialEngine::SequentialEngine(const System& system, SchedulingPolicy& policy)
    : system_(&system), policy_(&policy) {
  system.validate();
  // Warm every lazy index and lower every program now so the run loop
  // never pays the (one-time) build cost mid-measurement. The compiled
  // programs are skipped when the interpreter escape hatch is active:
  // that path must not depend on the compiler even building.
  system.warmIndices();
}

RunResult SequentialEngine::run(const RunOptions& options) {
  return run(initialState(*system_), options);
}

RunResult SequentialEngine::run(const EngineOptions& options) {
  RunOptions full = defaults_;
  static_cast<EngineOptions&>(full) = options;
  return run(full);
}

RunResult SequentialEngine::run(GlobalState start, const RunOptions& options) {
  g_seqRuns.add();
  // RunStats (functional result, unlike the obs counters): one scheduling
  // round per step here, plus wall time bracketing the whole run.
  stats_ = RunStats{};
  const auto wall0 = std::chrono::steady_clock::now();
  const auto finishStats = [&](const RunResult& r) {
    stats_.steps = r.steps;
    stats_.scanRounds = r.steps;
    stats_.wallNs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall0)
            .count());
  };
  RunResult result;
  result.finalState = std::move(start);
  // Settle initial tau steps so offers reflect stable states.
  for (std::size_t i = 0; i < system_->instanceCount(); ++i) {
    runInternal(*system_->instance(i).type, result.finalState.components[i]);
  }
  std::optional<EnabledInteractionCache> cache;
  if (options.incrementalCache) {
    cache.emplace(*system_);
    cache->reset(result.finalState);
  }
  const bool mustFilter = system_->maximalProgress() || !system_->priorities().empty();
  for (std::uint64_t step = 0; step < options.maxSteps; ++step) {
    // Without priority filtering the cached set is used in place; only the
    // filtering path needs a mutable copy.
    std::vector<EnabledInteraction> scratch;
    const std::vector<EnabledInteraction>* enabled;
    if (cache) {
      enabled = &cache->enabled();
    } else {
      scratch = enabledInteractions(*system_, result.finalState);
      enabled = &scratch;
    }
    if (enabled->empty()) {
      result.reason = StopReason::kDeadlock;
      finishStats(result);
      return result;
    }
    if (mustFilter) {
      scratch = applyPriorities(*system_, result.finalState,
                                cache ? *enabled : std::move(scratch));
      enabled = &scratch;
    }
    const auto [idx, choice] = policy_->pick(*system_, result.finalState, *enabled);
    require(idx < enabled->size(), "SchedulingPolicy returned out-of-range interaction");
    // Owned copy: `*enabled` may point into the cache, which is updated
    // below while `ei` is still needed for the trace record.
    const EnabledInteraction ei = (*enabled)[idx];
    execute(*system_, result.finalState, ei, choice);
    if (cache) cache->updateAfterExecute(result.finalState, ei);
    ++result.steps;
    g_seqSteps.add();
    if (options.recordTrace) {
      result.trace.events.push_back(TraceEvent{
          step, ei.connector, ei.mask, interactionLabel(*system_, ei)});
    }
    if (options.stopWhen && options.stopWhen(result.finalState)) {
      result.reason = StopReason::kPredicate;
      finishStats(result);
      return result;
    }
  }
  result.reason = StopReason::kStepLimit;
  finishStats(result);
  return result;
}

}  // namespace cbip
