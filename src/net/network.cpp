#include "net/network.hpp"

#include "obs/obs.hpp"
#include "util/require.hpp"

namespace cbip::net {

namespace {
// Telemetry (src/obs): counts only; the latency histogram is in virtual
// time units (queueing included), not wall clock.
const obs::Counter g_sent("net.sent");
const obs::Counter g_delivered("net.delivered");
const obs::Counter g_commits("net.commits");
const obs::Histogram g_latency("net.latency");
}  // namespace

void Context::send(NodeId to, int type, std::vector<std::int64_t> payload) {
  network_->post(self_, to, type, std::move(payload), now_);
}

void Context::commit() {
  g_commits.add();
  ++network_->commits_;
}

Network::Network(std::uint64_t seed, Latency latency, Time processing)
    : rng_(seed), latency_(latency), processing_(processing) {
  require(latency.min >= 0 && latency.min <= latency.max, "Network: bad latency range");
  require(processing >= 0, "Network: negative processing time");
}

NodeId Network::addNode(std::unique_ptr<Node> node) {
  require(!started_, "Network: cannot add nodes after run()");
  require(node != nullptr, "Network: null node");
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size()) - 1;
}

void Network::post(NodeId from, NodeId to, int type, std::vector<std::int64_t> payload,
                   Time now) {
  require(to >= 0 && static_cast<std::size_t>(to) < nodes_.size(),
          "Network: message to unknown node");
  const Time hop =
      latency_.min == latency_.max
          ? latency_.min
          : static_cast<Time>(rng_.range(latency_.min, latency_.max));
  Time at = now + hop;
  // FIFO per ordered pair: never deliver before an earlier send.
  Time& last = lastDelivery_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
  if (at < last) at = last;
  last = at;
  g_sent.add();
  queue_.push(Event{at, now, seq_++, Message{from, to, type, std::move(payload)}});
}

RunStats Network::run(const RunLimits& limits) {
  RunStats stats;
  if (!started_) {
    started_ = true;
    lastDelivery_.assign(nodes_.size() + 1, std::vector<Time>(nodes_.size(), 0));
    deliveredPerNode_.assign(nodes_.size(), 0);
    nodeFreeAt_.assign(nodes_.size(), 0);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      Context ctx(*this, static_cast<NodeId>(i), 0);
      nodes_[i]->onStart(ctx);
    }
  }
  std::uint64_t events = 0;
  while (!queue_.empty()) {
    if (limits.commitTarget != 0 && commits_ >= limits.commitTarget) break;
    if (events >= limits.maxEvents) {
      stats.hitEventBudget = true;
      break;
    }
    const Event ev = queue_.top();
    queue_.pop();
    // Finite node capacity: a busy node serves messages in arrival order.
    Time& freeAt = nodeFreeAt_[static_cast<std::size_t>(ev.message.to)];
    now_ = ev.at > freeAt ? ev.at : freeAt;
    freeAt = now_ + processing_;
    ++events;
    ++deliveredPerNode_[static_cast<std::size_t>(ev.message.to)];
    ++stats.deliveredMessages;
    g_delivered.add();
    g_latency.observe(static_cast<std::int64_t>(now_ - ev.sentAt));
    Context ctx(*this, ev.message.to, now_);
    nodes_[static_cast<std::size_t>(ev.message.to)]->onMessage(ev.message, ctx);
  }
  stats.quiescent = queue_.empty();
  stats.commits = commits_;
  stats.finalTime = now_;
  return stats;
}

}  // namespace cbip::net
