// Deterministic discrete-event network simulator.
//
// Substrate substitution (see DESIGN.md): the BIP distributed backend
// emits MPI / TCP C++ for clusters; this repository has no cluster, so the
// three-layer S/R-BIP runtime executes on a simulated asynchronous
// message-passing network instead. The simulator provides:
//   * point-to-point FIFO channels between nodes (per-pair ordering is
//     preserved even with randomized latency — matching TCP semantics);
//   * configurable per-hop latency drawn from a seeded PRNG, so runs are
//     exactly reproducible;
//   * virtual time, message accounting and a commit counter, which the
//     benchmarks report instead of wall-clock numbers.
//
// Handlers run atomically at their delivery instant (standard DES
// semantics): a node's state is only ever touched from its own handlers.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace cbip::net {

using NodeId = int;
using Time = std::int64_t;

struct Message {
  NodeId from = -1;
  NodeId to = -1;
  /// Message kind tag (protocol-defined).
  int type = 0;
  std::vector<std::int64_t> payload;
};

class Network;

/// Handler-side interface to the network.
class Context {
 public:
  Context(Network& network, NodeId self, Time now) : network_(&network), self_(self), now_(now) {}

  /// Sends `message` from the current node; delivery is asynchronous.
  void send(NodeId to, int type, std::vector<std::int64_t> payload = {});
  Time now() const { return now_; }
  NodeId self() const { return self_; }
  /// Registers one unit of application progress (e.g. a committed
  /// interaction); the run loop can stop on a progress target.
  void commit();

 private:
  Network* network_;
  NodeId self_;
  Time now_;
};

/// A protocol participant. Implementations keep all their state private
/// and react only to onStart / onMessage.
class Node {
 public:
  virtual ~Node() = default;
  virtual void onStart(Context& ctx) { (void)ctx; }
  virtual void onMessage(const Message& message, Context& ctx) = 0;
};

struct Latency {
  Time min = 1;
  Time max = 1;
};

struct RunLimits {
  /// Stop once this many commits were registered (0 = no target).
  std::uint64_t commitTarget = 0;
  /// Hard event budget (always enforced).
  std::uint64_t maxEvents = 1'000'000;
};

struct RunStats {
  std::uint64_t deliveredMessages = 0;
  std::uint64_t commits = 0;
  Time finalTime = 0;
  bool hitEventBudget = false;
  /// True if the event queue drained before reaching the commit target
  /// (for protocols without periodic traffic this signals quiescence —
  /// or a distributed deadlock; the caller decides which).
  bool quiescent = false;
};

class Network {
 public:
  /// `processing` is the per-message handler occupancy: a node serves at
  /// most one message per `processing` time units (0 = infinitely fast
  /// nodes); queued messages are served in arrival order.
  explicit Network(std::uint64_t seed, Latency latency = {}, Time processing = 0);

  /// Adds a node; returns its id. All nodes must be added before run().
  NodeId addNode(std::unique_ptr<Node> node);
  std::size_t nodeCount() const { return nodes_.size(); }

  /// Runs start handlers (first call only) then delivers events until a
  /// limit is reached or the queue drains.
  RunStats run(const RunLimits& limits);

  /// Per-node delivered-message counts (index = NodeId).
  const std::vector<std::uint64_t>& deliveredPerNode() const { return deliveredPerNode_; }

 private:
  friend class Context;
  void post(NodeId from, NodeId to, int type, std::vector<std::int64_t> payload, Time now);

  struct Event {
    Time at = 0;
    Time sentAt = 0;        // virtual send instant (telemetry: latency)
    std::uint64_t seq = 0;  // tie-break: preserves determinism
    Message message;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  Rng rng_;
  Latency latency_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::vector<std::vector<Time>> lastDelivery_;  // FIFO clamp per (from,to)
  std::uint64_t seq_ = 0;
  std::uint64_t commits_ = 0;
  std::vector<std::uint64_t> deliveredPerNode_;
  std::vector<Time> nodeFreeAt_;
  Time processing_ = 0;
  Time now_ = 0;
  bool started_ = false;
};

}  // namespace cbip::net
