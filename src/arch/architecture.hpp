// Architectures as first-class, property-enforcing operators
// (monograph Section 5.5.2).
//
// An architecture A(n)[C1..Cn] = gl(n)(C1..Cn, D(n)) applies glue and
// coordinator components D to a set of components so that the composite
// satisfies a *characteristic property* while preserving the components'
// own invariants and deadlock-freedom. This module provides:
//
//   * a library of reference architectures — mutual exclusion (token
//     coordinator), triple modular redundancy (majority voter), and
//     fixed-priority scheduling (priority glue only, no coordinator);
//   * `verifyComposition` — the operational reading of the ⊕ operator:
//     applying several architectures to the same components yields a
//     meaningful composition exactly when every characteristic property
//     still holds and the result is not the bottom of the architecture
//     lattice (i.e. it is deadlock-free);
//   * the lattice order itself is checked with the simulation preorder
//     (verify::simulates): A1 ≤ A2 iff A1's behaviours are a subset.
//
// Each apply* function mutates the system in place (adding coordinators /
// connectors / priorities) and returns the applied-architecture record:
// its name, its characteristic property as a state predicate, and the
// coordinator instances it added.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/system.hpp"

namespace cbip::arch {

struct AppliedArchitecture {
  std::string name;
  std::string property;  // human-readable characteristic property
  /// Characteristic property as a checkable state predicate.
  std::function<bool(const GlobalState&)> holds;
  /// Instances added by the architecture (coordinators D).
  std::vector<int> coordinators;
};

/// One client of the mutual-exclusion architecture.
struct MutexClient {
  int instance = 0;
  int beginPort = 0;  // port fired to enter the critical section
  int endPort = 0;    // port fired to leave it
  /// Locations of the instance that count as "inside".
  std::vector<int> criticalLocations;
};

/// Mutual exclusion via a single-token coordinator: begin_i is joined with
/// the coordinator's `acquire`, end_i with `release`. Characteristic
/// property: at most one client is at a critical location.
AppliedArchitecture applyMutex(System& system, const std::vector<MutexClient>& clients);

/// Triple modular redundancy: the three replicas' result ports are joined
/// with a majority voter (the connector's up/down computes the 2-of-3
/// majority). Characteristic property: after every vote the voter output
/// equals the majority of the replica outputs.
///
/// Each replica must export exactly one value on `resultPort`.
struct TmrReplica {
  int instance = 0;
  int resultPort = 0;
};
AppliedArchitecture applyTmr(System& system, const std::array<TmrReplica, 3>& replicas);

/// Index of the voter's "last vote" variable within the voter instance
/// added by applyTmr (exposed for tests/examples).
int tmrVoterOutputVar();

/// Fixed-priority scheduling: pure priority glue — connector named
/// `ordered[i]` loses to every connector later in the list. No
/// coordinator components (priorities are glue, not behaviour).
/// The characteristic property (a trace property — checked by the engine
/// tests rather than a state predicate) is: a lower-priority interaction
/// never fires while a higher-priority one is enabled.
AppliedArchitecture applyFixedPriority(System& system,
                                       const std::vector<std::string>& lowToHigh);

/// Operational check of the composition ⊕: explores the composed system
/// and verifies that (1) every characteristic property holds in every
/// reachable state and (2) the composition is not "bottom" (no deadlock).
struct CompositionResult {
  bool propertiesHold = false;
  bool deadlockFree = false;
  std::uint64_t statesChecked = 0;
  std::string firstViolation;  // architecture name, when propertiesHold is false
};

CompositionResult verifyComposition(const System& system,
                                    const std::vector<AppliedArchitecture>& applied,
                                    std::uint64_t maxStates = 200'000);

}  // namespace cbip::arch
