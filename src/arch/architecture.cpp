#include "arch/architecture.hpp"

#include <array>

#include "core/semantics.hpp"
#include "util/require.hpp"
#include "verify/reachability.hpp"

namespace cbip::arch {

namespace {

using expr::Assign;
using expr::VarRef;

AtomicTypePtr makeLock() {
  auto t = std::make_shared<AtomicType>("MutexLock");
  const int free = t->addLocation("free");
  const int taken = t->addLocation("taken");
  const int acquire = t->addPort("acquire");
  const int release = t->addPort("release");
  t->addTransition(free, acquire, taken);
  t->addTransition(taken, release, free);
  t->setInitialLocation(free);
  return t;
}

}  // namespace

AppliedArchitecture applyMutex(System& system, const std::vector<MutexClient>& clients) {
  require(!clients.empty(), "applyMutex: no clients");
  auto lockType = makeLock();
  const int lock = system.addInstance("mutexLock" + std::to_string(system.instanceCount()),
                                      lockType);
  const int acquire = lockType->portIndex("acquire");
  const int release = lockType->portIndex("release");
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const MutexClient& c = clients[i];
    system.addConnector(rendezvous("mutexBegin" + std::to_string(i),
                                   {PortRef{c.instance, c.beginPort}, PortRef{lock, acquire}}));
    system.addConnector(rendezvous("mutexEnd" + std::to_string(i),
                                   {PortRef{c.instance, c.endPort}, PortRef{lock, release}}));
  }
  system.validate();

  AppliedArchitecture a;
  a.name = "Mutex";
  a.property = "at most one client inside its critical section";
  a.coordinators = {lock};
  a.holds = [clients](const GlobalState& g) {
    int inside = 0;
    for (const MutexClient& c : clients) {
      const int loc = g.components[static_cast<std::size_t>(c.instance)].location;
      for (const int crit : c.criticalLocations) {
        if (loc == crit) {
          ++inside;
          break;
        }
      }
    }
    return inside <= 1;
  };
  return a;
}

AppliedArchitecture applyTmr(System& system, const std::array<TmrReplica, 3>& replicas) {
  auto voterType = std::make_shared<AtomicType>("TmrVoter");
  const int idle = voterType->addLocation("idle");
  const int out = voterType->addVariable("out", 0);
  voterType->addVariable("votes", 0);
  const int vote = voterType->addPort("vote", {out});
  voterType->addTransition(idle, vote, Expr::top(),
                           {Assign{VarRef{0, voterType->variableIndex("votes")},
                                   Expr::local(voterType->variableIndex("votes")) + Expr::lit(1)}},
                           idle);
  voterType->setInitialLocation(idle);
  const int voter =
      system.addInstance("tmrVoter" + std::to_string(system.instanceCount()), voterType);

  Connector c("tmrVote");
  std::array<int, 3> ends{};
  for (std::size_t r = 0; r < 3; ++r) {
    ends[r] = c.addSynchron(PortRef{replicas[r].instance, replicas[r].resultPort});
  }
  const int eVoter = c.addSynchron(PortRef{voter, vote});
  // 2-of-3 majority: if a agrees with b or c, a wins; otherwise b == c.
  const Expr a = Expr::var(ends[0], 0), b = Expr::var(ends[1], 0), cc = Expr::var(ends[2], 0);
  c.addDown(eVoter, 0, Expr::ite(a == b || a == cc, a, b));
  system.addConnector(std::move(c));
  system.validate();

  AppliedArchitecture applied;
  applied.name = "TMR";
  applied.property = "voter output equals the 2-of-3 majority of replica outputs";
  applied.coordinators = {voter};
  // State predicate: after any vote, `out` matches the majority of the
  // replicas' *current* exported values only at the voting instant; as a
  // persistent invariant we check a weaker but stateful form — the voter
  // output always equals the majority of the last voted values, which the
  // connector establishes by construction. Here we check the voting-count
  // consistency and leave exactness to the trace tests.
  applied.holds = [voter](const GlobalState& g) {
    return g.components[static_cast<std::size_t>(voter)].vars[1] >= 0;
  };
  return applied;
}

int tmrVoterOutputVar() { return 0; }

AppliedArchitecture applyFixedPriority(System& system,
                                       const std::vector<std::string>& lowToHigh) {
  require(lowToHigh.size() >= 2, "applyFixedPriority: need at least two connectors");
  for (std::size_t low = 0; low < lowToHigh.size(); ++low) {
    for (std::size_t high = low + 1; high < lowToHigh.size(); ++high) {
      system.addPriority(PriorityRule{lowToHigh[low], lowToHigh[high], std::nullopt});
    }
  }
  system.validate();

  AppliedArchitecture a;
  a.name = "FixedPriority";
  a.property = "a lower-priority interaction never fires while a higher one is enabled";
  a.coordinators = {};
  a.holds = [](const GlobalState&) { return true; };  // trace property (engine-checked)
  return a;
}

CompositionResult verifyComposition(const System& system,
                                    const std::vector<AppliedArchitecture>& applied,
                                    std::uint64_t maxStates) {
  CompositionResult result;
  verify::ReachOptions opt;
  opt.maxStates = maxStates;
  std::string violation;
  opt.invariant = [&applied, &violation](const GlobalState& g) {
    for (const AppliedArchitecture& a : applied) {
      if (a.holds && !a.holds(g)) {
        if (violation.empty()) violation = a.name;
        return false;
      }
    }
    return true;
  };
  const verify::ReachResult r = verify::explore(system, opt);
  result.statesChecked = r.states;
  result.propertiesHold = !r.invariantViolation.has_value();
  result.deadlockFree = r.complete && r.deadlocks.empty();
  result.firstViolation = violation;
  return result;
}

}  // namespace cbip::arch
