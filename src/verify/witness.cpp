#include "verify/witness.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <unordered_map>

#include "core/semantics.hpp"
#include "util/require.hpp"

namespace cbip::verify {

namespace {

struct StateHasher {
  std::size_t operator()(const GlobalState& s) const {
    return static_cast<std::size_t>(hashState(s));
  }
};

int distanceToWitness(const GlobalState& state, const std::vector<int>& witness) {
  int d = 0;
  for (std::size_t i = 0; i < state.components.size() && i < witness.size(); ++i) {
    if (witness[i] >= 0 && state.components[i].location != witness[i]) ++d;
  }
  return d;
}

bool matchesWitness(const GlobalState& state, const std::vector<int>& witness) {
  return distanceToWitness(state, witness) == 0;
}

}  // namespace

WitnessResult confirmDeadlockWitness(const System& system,
                                     const std::vector<int>& witnessLocations,
                                     std::uint64_t maxStates) {
  system.validate();
  WitnessResult result;

  struct Entry {
    int distance;
    std::uint64_t order;  // FIFO tie-break for determinism
    std::size_t id;
  };
  struct EntryOrder {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.distance != b.distance ? a.distance > b.distance : a.order > b.order;
    }
  };

  // id -> (state, parent id, label from parent)
  std::vector<GlobalState> states;
  std::vector<std::pair<std::size_t, std::string>> parent;
  std::unordered_map<GlobalState, std::size_t, StateHasher> seen;
  std::priority_queue<Entry, std::vector<Entry>, EntryOrder> frontier;
  std::uint64_t order = 0;

  GlobalState init = initialState(system);
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    runInternal(*system.instance(i).type, init.components[i]);
  }
  seen.emplace(init, 0);
  states.push_back(std::move(init));
  parent.emplace_back(0, "");
  frontier.push(Entry{distanceToWitness(states[0], witnessLocations), order++, 0});

  std::optional<std::size_t> firstOtherDeadlock;
  bool exhausted = true;

  auto traceTo = [&states, &parent](std::size_t id) {
    std::vector<std::string> trace;
    while (id != 0) {
      trace.push_back(parent[id].second);
      id = parent[id].first;
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
  };

  while (!frontier.empty()) {
    const Entry entry = frontier.top();
    frontier.pop();
    ++result.statesExplored;
    const GlobalState state = states[entry.id];  // copy: states may grow

    std::vector<EnabledInteraction> enabled = enabledInteractions(system, state);
    if (enabled.empty()) {
      if (matchesWitness(state, witnessLocations)) {
        result.status = WitnessStatus::kConfirmed;
        result.deadlock = state;
        result.trace = traceTo(entry.id);
        return result;
      }
      if (!firstOtherDeadlock.has_value()) firstOtherDeadlock = entry.id;
      continue;
    }
    enabled = applyPriorities(system, state, std::move(enabled));
    for (const EnabledInteraction& ei : enabled) {
      const std::string label = interactionLabel(system, ei);
      std::vector<int> choice(ei.ends.size(), 0);
      while (true) {
        GlobalState next = state;
        execute(system, next, ei, choice);
        if (seen.find(next) == seen.end()) {
          if (states.size() >= maxStates) {
            exhausted = false;
          } else {
            const std::size_t id = states.size();
            seen.emplace(next, id);
            states.push_back(std::move(next));
            parent.emplace_back(entry.id, label);
            frontier.push(Entry{distanceToWitness(states[id], witnessLocations), order++, id});
          }
        }
        std::size_t k = 0;
        while (k < choice.size()) {
          if (static_cast<std::size_t>(++choice[k]) < ei.choices[k].size()) break;
          choice[k] = 0;
          ++k;
        }
        if (k == choice.size()) break;
      }
    }
  }

  if (firstOtherDeadlock.has_value()) {
    result.status = WitnessStatus::kRealButDifferent;
    result.deadlock = states[*firstOtherDeadlock];
    result.trace = traceTo(*firstOtherDeadlock);
    return result;
  }
  result.status = exhausted ? WitnessStatus::kSpurious : WitnessStatus::kInconclusive;
  return result;
}

}  // namespace cbip::verify
