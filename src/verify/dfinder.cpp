#include "verify/dfinder.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>

#include "analyze/analyze.hpp"
#include "expr/compile.hpp"
#include "obs/obs.hpp"
#include "sat/solver.hpp"
#include "util/require.hpp"
#include "verify/parallel.hpp"

namespace cbip::verify {

namespace {
// Telemetry (src/obs): counts only, never steers the verdict.
const obs::Counter g_rounds("dfinder.rounds");
const obs::Counter g_traps("dfinder.traps");
const obs::Counter g_guardsPruned("dfinder.guards_pruned");
const obs::Counter g_witnesses("dfinder.witnesses");
const obs::Counter g_invComputed("dfinder.invariants.computed");
const obs::Counter g_invReused("dfinder.invariants.reused");
const obs::Counter g_trapQueries("dfinder.trap.queries");
}  // namespace

const char* to_string(DFinderVerdict verdict) {
  switch (verdict) {
    case DFinderVerdict::kDeadlockFree: return "kDeadlockFree";
    case DFinderVerdict::kPotentialDeadlock: return "kPotentialDeadlock";
  }
  return "<invalid DFinderVerdict>";
}

std::ostream& operator<<(std::ostream& os, DFinderVerdict verdict) {
  return os << to_string(verdict);
}

namespace {

/// Dense (instance, location) -> id numbering, instance-major. Id order
/// coincides with Place's lexicographic order, so walking ids ascending
/// visits places exactly like iterating a std::map<Place, ...>.
struct PlaceTable {
  std::vector<int> offset;   // instance -> first id
  std::vector<Place> place;  // id -> place
  int total = 0;

  explicit PlaceTable(const System& system) {
    offset.reserve(system.instanceCount());
    for (std::size_t i = 0; i < system.instanceCount(); ++i) {
      offset.push_back(total);
      const AtomicType& type = *system.instance(i).type;
      for (std::size_t l = 0; l < type.locationCount(); ++l) {
        place.push_back(Place{static_cast<int>(i), static_cast<int>(l)});
      }
      total += static_cast<int>(type.locationCount());
    }
  }

  int id(const Place& p) const {
    return offset[static_cast<std::size_t>(p.instance)] + p.location;
  }
};

/// Net adjacency by place: which transitions take from / feed into each
/// place (one entry per occurrence). Built once per check and shared
/// read-only by every trap query of the portfolio.
struct NetIndex {
  std::vector<std::vector<int>> takesFrom;
  std::vector<std::vector<int>> feedsInto;
  std::vector<char> initialMark;
  std::size_t transitionCount = 0;

  NetIndex(const PlaceTable& pt, const InteractionNet& net)
      : takesFrom(static_cast<std::size_t>(pt.total)),
        feedsInto(static_cast<std::size_t>(pt.total)),
        initialMark(static_cast<std::size_t>(pt.total), 0),
        transitionCount(net.transitions.size()) {
    for (std::size_t t = 0; t < net.transitions.size(); ++t) {
      for (const Place& p : net.transitions[t].pre) {
        takesFrom[static_cast<std::size_t>(pt.id(p))].push_back(static_cast<int>(t));
      }
      for (const Place& q : net.transitions[t].post) {
        feedsInto[static_cast<std::size_t>(pt.id(q))].push_back(static_cast<int>(t));
      }
    }
    for (const Place& p : net.initial) initialMark[static_cast<std::size_t>(pt.id(p))] = 1;
  }
};

/// Searches a trap of `net` that is initially marked but completely
/// unoccupied in the control state `occupied` (such a trap is an
/// invariant that *excludes* this state). Returns the minimized trap, or
/// empty if none exists.
///
/// Legacy formulation: a fresh SAT instance per witness over std::map
/// place variables. The fast pipeline's trapExcludingFast below poses
/// the *same* SAT instance (same variable numbering, same clause order,
/// via a copied pre-encoded template) and replays the same greedy
/// minimization decisions, so the two return identical traps — only the
/// bookkeeping cost differs.
std::vector<Place> trapExcluding(const System& system, const InteractionNet& net,
                                 const std::map<Place, bool>& occupied) {
  std::map<Place, int> varOf;
  std::vector<Place> places;
  sat::Solver solver;
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    const AtomicType& type = *system.instance(i).type;
    for (std::size_t l = 0; l < type.locationCount(); ++l) {
      const Place p{static_cast<int>(i), static_cast<int>(l)};
      varOf[p] = solver.newVar();
      places.push_back(p);
    }
  }
  for (const NetTransition& t : net.transitions) {
    std::vector<sat::Lit> post;
    post.reserve(t.post.size());
    for (const Place& q : t.post) post.push_back(varOf.at(q));
    for (const Place& p : t.pre) {
      std::vector<sat::Lit> clause{-varOf.at(p)};
      clause.insert(clause.end(), post.begin(), post.end());
      solver.addClause(std::move(clause));
    }
  }
  {
    std::vector<sat::Lit> initiallyMarkedClause;
    for (const Place& p : net.initial) initiallyMarkedClause.push_back(varOf.at(p));
    solver.addClause(std::move(initiallyMarkedClause));
  }
  // The trap must avoid every occupied place of the witness.
  for (const auto& [place, isOccupied] : occupied) {
    if (isOccupied) solver.addClause({-varOf.at(place)});
  }
  if (solver.solve() != sat::Result::kSat) return {};
  std::vector<Place> trap;
  for (const Place& p : places) {
    if (solver.modelValue(varOf.at(p))) trap.push_back(p);
  }
  // Greedy minimization, keeping trap-ness and initial marking (removing
  // places can only help the exclusion property).
  for (std::size_t k = trap.size(); k > 0; --k) {
    std::vector<Place> candidate = trap;
    candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(k - 1));
    if (!candidate.empty() && isTrap(net, candidate) && initiallyMarked(net, candidate)) {
      trap = std::move(candidate);
    }
  }
  return trap;
}

/// The witness-independent part of the trap query, encoded once per
/// check: place variables (var = place id + 1), the trap-closure clauses
/// ("taking from the trap feeds the trap") and the initially-marked
/// clause. Per witness the portfolio *copies* this solver and adds only
/// the occupied-place exclusion units — the copy starts in exactly the
/// state a from-scratch encode would produce (no clause here is unit, so
/// the template's trail is empty and no heuristic state has moved),
/// which keeps the trap sequence identical to the historical per-witness
/// rebuild while skipping ~|net| clause normalizations per query.
sat::Solver trapTemplate(const PlaceTable& pt, const InteractionNet& net) {
  sat::Solver solver;
  for (int id = 0; id < pt.total; ++id) solver.newVar();
  const auto varOf = [](int id) { return id + 1; };
  for (const NetTransition& t : net.transitions) {
    std::vector<sat::Lit> post;
    post.reserve(t.post.size());
    for (const Place& q : t.post) post.push_back(varOf(pt.id(q)));
    for (const Place& p : t.pre) {
      std::vector<sat::Lit> clause{-varOf(pt.id(p))};
      clause.insert(clause.end(), post.begin(), post.end());
      solver.addClause(std::move(clause));
    }
  }
  std::vector<sat::Lit> initiallyMarkedClause;
  for (const Place& p : net.initial) initiallyMarkedClause.push_back(varOf(pt.id(p)));
  solver.addClause(std::move(initiallyMarkedClause));
  return solver;
}

/// Fast twin of trapExcluding: dense place ids, the witness-independent
/// encoding copied from `tmpl` instead of rebuilt, and greedy
/// minimization via incrementally maintained per-transition pre/post
/// membership counts (O(degree) per removal candidate instead of
/// O(net × |trap|) full isTrap recomputation). Same SAT instance, same
/// decisions, identical result. `occupied` is indexed by place id.
/// Thread-safe: everything it touches is call-local or read-only shared
/// state, which is what lets the refinement portfolio run one of these
/// per witness in parallel.
std::vector<Place> trapExcludingFast(const PlaceTable& pt, const NetIndex& ni,
                                     const sat::Solver& tmpl,
                                     const std::vector<char>& occupied) {
  g_trapQueries.add();
  // Copy-assigning into a thread-local scratch instance (rather than
  // copy-constructing a fresh one) reuses the clause / watch-list buffers
  // across queries; the value state after the assignment is the template's
  // regardless, so behaviour stays identical and per-thread.
  static thread_local sat::Solver scratch;
  sat::Solver& solver = scratch;
  solver = tmpl;
  const auto varOf = [](int id) { return id + 1; };
  for (int id = 0; id < pt.total; ++id) {
    if (occupied[static_cast<std::size_t>(id)] != 0) solver.addClause({-varOf(id)});
  }
  if (solver.solve() != sat::Result::kSat) return {};
  std::vector<int> trapIds;
  for (int id = 0; id < pt.total; ++id) {
    if (solver.modelValue(varOf(id))) trapIds.push_back(id);
  }

  const std::size_t transitionCount = ni.transitionCount;
  std::vector<int> preCount(transitionCount, 0);
  std::vector<int> postCount(transitionCount, 0);
  long marked = 0;
  for (int id : trapIds) {
    for (int t : ni.takesFrom[static_cast<std::size_t>(id)]) {
      ++preCount[static_cast<std::size_t>(t)];
    }
    for (int t : ni.feedsInto[static_cast<std::size_t>(id)]) {
      ++postCount[static_cast<std::size_t>(t)];
    }
    if (ni.initialMark[static_cast<std::size_t>(id)] != 0) ++marked;
  }
  long violations = 0;
  for (std::size_t t = 0; t < transitionCount; ++t) {
    if (preCount[t] > 0 && postCount[t] == 0) ++violations;
  }
  const auto violating = [&](int t) {
    return preCount[static_cast<std::size_t>(t)] > 0 && postCount[static_cast<std::size_t>(t)] == 0;
  };
  // Tentatively removes (delta = -1) or restores (delta = +1) a place,
  // keeping the violation count ("some transition takes from S but feeds
  // nothing back" — the negation of trap-ness) and the marked count in
  // sync.
  const auto toggle = [&](int id, int delta) {
    for (int t : ni.takesFrom[static_cast<std::size_t>(id)]) {
      if (violating(t)) --violations;
      preCount[static_cast<std::size_t>(t)] += delta;
      if (violating(t)) ++violations;
    }
    for (int t : ni.feedsInto[static_cast<std::size_t>(id)]) {
      if (violating(t)) --violations;
      postCount[static_cast<std::size_t>(t)] += delta;
      if (violating(t)) ++violations;
    }
    if (ni.initialMark[static_cast<std::size_t>(id)] != 0) marked += delta;
  };
  for (std::size_t k = trapIds.size(); k > 0; --k) {
    if (trapIds.size() == 1) break;  // the empty candidate is never accepted
    const int id = trapIds[k - 1];
    toggle(id, -1);
    if (violations == 0 && marked > 0) {
      trapIds.erase(trapIds.begin() + static_cast<std::ptrdiff_t>(k - 1));
    } else {
      toggle(id, +1);
    }
  }
  std::vector<Place> trap;
  trap.reserve(trapIds.size());
  for (int id : trapIds) trap.push_back(pt.place[static_cast<std::size_t>(id)]);
  return trap;
}

/// The pre-PR-10 refinement loop, verbatim: a fresh SAT encoding per
/// round, one witness per round, serial trap search. Kept as the
/// differential oracle and the baseline arm of the speedup benchmarks.
DFinderResult legacyCheckWith(const System& system,
                              std::vector<ComponentInvariant> componentInvariants,
                              std::vector<std::vector<Place>> traps) {
  DFinderResult result;
  result.componentInvariants = std::move(componentInvariants);
  result.traps = std::move(traps);
  const InteractionNet net = buildInteractionNet(system, result.componentInvariants);

  // Invariant-strengthening loop: check CI ∧ II ∧ DIS; on SAT, look for a
  // trap invariant excluding the witness and retry. Terminates because
  // every new trap kills at least the current witness (and the state
  // space of control witnesses is finite).
  constexpr int kMaxRounds = 4096;
  for (int round = 0; round < kMaxRounds; ++round) {
    g_rounds.add();
    sat::Solver solver;
    std::map<Place, int> at;
    for (std::size_t i = 0; i < system.instanceCount(); ++i) {
      const AtomicType& type = *system.instance(i).type;
      const ComponentInvariant& inv = result.componentInvariants[i];
      std::vector<sat::Lit> atLeastOne;
      std::vector<int> vars;
      for (std::size_t l = 0; l < type.locationCount(); ++l) {
        const int v = solver.newVar();
        at[Place{static_cast<int>(i), static_cast<int>(l)}] = v;
        // CI (control part): unreachable locations are excluded outright.
        if (!inv.reachableLocations[l]) {
          solver.addClause({-v});
        } else {
          atLeastOne.push_back(v);
          vars.push_back(v);
        }
      }
      require(!atLeastOne.empty(),
              "checkDeadlockFreedom: component with no reachable location");
      solver.addClause(atLeastOne);
      for (std::size_t a = 0; a < vars.size(); ++a) {
        for (std::size_t b = a + 1; b < vars.size(); ++b) {
          solver.addClause({-vars[a], -vars[b]});
        }
      }
    }

    // II: every trap invariant keeps a token.
    for (const std::vector<Place>& trap : result.traps) {
      std::vector<sat::Lit> clause;
      clause.reserve(trap.size());
      for (const Place& p : trap) clause.push_back(at.at(p));
      solver.addClause(std::move(clause));
    }

    // DIS: no interaction is enabled. For interaction a with participants
    // e_1..e_k, src_{a,e} = "participant e offers its port" (some feasible
    // transition's source location occupied); ¬enabled(a) = ∨_e ¬src_{a,e},
    // with at(i,l) → src_{a,e} binding the auxiliary from below.
    for (std::size_t ci = 0; ci < system.connectorCount(); ++ci) {
      const Connector& c = system.connector(ci);
      for (InteractionMask mask : c.feasibleMasks()) {
        std::vector<int> srcVars;
        bool alwaysDisabled = false;
        for (std::size_t e = 0; e < c.endCount(); ++e) {
          if ((mask & (InteractionMask{1} << e)) == 0) continue;
          const PortRef& p = c.end(e).port;
          const AtomicType& type =
              *system.instance(static_cast<std::size_t>(p.instance)).type;
          const ComponentInvariant& inv =
              result.componentInvariants[static_cast<std::size_t>(p.instance)];
          std::vector<int> sources;
          for (std::size_t ti = 0; ti < type.transitionCount(); ++ti) {
            const Transition& t = type.transition(static_cast<int>(ti));
            if (t.port != p.port || !inv.guardFeasible[ti]) continue;
            if (!inv.reachableLocations[static_cast<std::size_t>(t.from)]) continue;
            sources.push_back(at.at(Place{p.instance, t.from}));
          }
          if (sources.empty()) {
            alwaysDisabled = true;
            break;
          }
          const int src = solver.newVar();
          for (int loc : sources) solver.addClause({-loc, src});
          srcVars.push_back(src);
        }
        if (alwaysDisabled) continue;
        std::vector<sat::Lit> someEndDisabled;
        someEndDisabled.reserve(srcVars.size());
        for (int src : srcVars) someEndDisabled.push_back(-src);
        solver.addClause(std::move(someEndDisabled));
      }
    }
    // Unconditionally enabled internal transitions: their source location
    // can never be part of a deadlock (the engine settles taus).
    for (std::size_t i = 0; i < system.instanceCount(); ++i) {
      const AtomicType& type = *system.instance(i).type;
      const ComponentInvariant& inv = result.componentInvariants[i];
      for (std::size_t ti = 0; ti < type.transitionCount(); ++ti) {
        const Transition& t = type.transition(static_cast<int>(ti));
        if (t.port != kInternalPort || !inv.guardFeasible[ti]) continue;
        if (!inv.reachableLocations[static_cast<std::size_t>(t.from)]) continue;
        if (t.guard.isTrue()) {
          solver.addClause({-at.at(Place{static_cast<int>(i), t.from})});
        }
      }
    }

    result.booleanVariables = static_cast<std::size_t>(solver.variableCount());
    const sat::Result sr = solver.solve();
    result.satConflicts += solver.conflicts();
    result.satDecisions += solver.decisions();
    if (sr == sat::Result::kUnsat) {
      result.verdict = DFinderVerdict::kDeadlockFree;
      return result;
    }
    // Witness control state; try to exclude it with a fresh trap.
    std::map<Place, bool> occupied;
    result.witnessLocations.assign(system.instanceCount(), -1);
    for (const auto& [place, var] : at) {
      const bool occ = solver.modelValue(var);
      occupied[place] = occ;
      if (occ) {
        result.witnessLocations[static_cast<std::size_t>(place.instance)] = place.location;
      }
    }
    std::vector<Place> trap = trapExcluding(system, net, occupied);
    if (trap.empty()) {
      result.verdict = DFinderVerdict::kPotentialDeadlock;
      return result;
    }
    g_traps.add();
    result.traps.push_back(std::move(trap));
  }
  result.verdict = DFinderVerdict::kPotentialDeadlock;
  return result;
}

/// The fast refinement loop (see the header comment): one incremental
/// solver for the whole check, selector-guarded witness batches, and a
/// parallel trap portfolio with deterministic in-order merging.
///
/// Soundness of the batch step: every witness of a batch gets either a
/// fresh trap (adopted, clause added) or a trap already adopted earlier
/// in the same batch — either way a trap clause excluding it, so no
/// witness can reappear in a later round. The first witness of a round
/// can never yield a trap that is already a solver clause (the witness
/// is a model of every current clause, and its excluding trap avoids all
/// its occupied places), so each round adopts at least one new trap or
/// returns — the same progress argument as the legacy loop.
DFinderResult fastCheck(const System& system, std::vector<ComponentInvariant> componentInvariants,
                        std::vector<std::vector<Place>> traps, const DFinderOptions& options,
                        const InteractionNet* prebuiltNet) {
  DFinderResult result;
  result.componentInvariants = std::move(componentInvariants);
  result.traps = std::move(traps);
  InteractionNet built;
  if (prebuiltNet == nullptr) built = buildInteractionNet(system, result.componentInvariants);
  const InteractionNet& net = prebuiltNet != nullptr ? *prebuiltNet : built;
  const PlaceTable pt(system);
  const NetIndex ni(pt, net);
  const sat::Solver trapTmpl = trapTemplate(pt, net);

  sat::Solver solver;
  std::vector<int> at(static_cast<std::size_t>(pt.total), 0);
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    const AtomicType& type = *system.instance(i).type;
    const ComponentInvariant& inv = result.componentInvariants[i];
    std::vector<sat::Lit> atLeastOne;
    std::vector<int> vars;
    for (std::size_t l = 0; l < type.locationCount(); ++l) {
      const int v = solver.newVar();
      at[static_cast<std::size_t>(pt.id(Place{static_cast<int>(i), static_cast<int>(l)}))] = v;
      if (!inv.reachableLocations[l]) {
        solver.addClause({-v});
      } else {
        atLeastOne.push_back(v);
        vars.push_back(v);
      }
    }
    require(!atLeastOne.empty(), "checkDeadlockFreedom: component with no reachable location");
    solver.addClause(atLeastOne);
    for (std::size_t a = 0; a < vars.size(); ++a) {
      for (std::size_t b = a + 1; b < vars.size(); ++b) {
        solver.addClause({-vars[a], -vars[b]});
      }
    }
  }
  const auto atPlace = [&](const Place& p) { return at[static_cast<std::size_t>(pt.id(p))]; };

  // II: every already-proven trap invariant keeps a token.
  for (const std::vector<Place>& trap : result.traps) {
    std::vector<sat::Lit> clause;
    clause.reserve(trap.size());
    for (const Place& p : trap) clause.push_back(atPlace(p));
    solver.addClause(std::move(clause));
  }

  // DIS (same encoding as the legacy loop, built once).
  for (std::size_t ci = 0; ci < system.connectorCount(); ++ci) {
    const Connector& c = system.connector(ci);
    for (InteractionMask mask : c.feasibleMasks()) {
      std::vector<int> srcVars;
      bool alwaysDisabled = false;
      for (std::size_t e = 0; e < c.endCount(); ++e) {
        if ((mask & (InteractionMask{1} << e)) == 0) continue;
        const PortRef& p = c.end(e).port;
        const AtomicType& type = *system.instance(static_cast<std::size_t>(p.instance)).type;
        const ComponentInvariant& inv =
            result.componentInvariants[static_cast<std::size_t>(p.instance)];
        std::vector<int> sources;
        for (std::size_t ti = 0; ti < type.transitionCount(); ++ti) {
          const Transition& t = type.transition(static_cast<int>(ti));
          if (t.port != p.port || !inv.guardFeasible[ti]) continue;
          if (!inv.reachableLocations[static_cast<std::size_t>(t.from)]) continue;
          sources.push_back(atPlace(Place{p.instance, t.from}));
        }
        if (sources.empty()) {
          alwaysDisabled = true;
          break;
        }
        const int src = solver.newVar();
        for (int loc : sources) solver.addClause({-loc, src});
        srcVars.push_back(src);
      }
      if (alwaysDisabled) continue;
      std::vector<sat::Lit> someEndDisabled;
      someEndDisabled.reserve(srcVars.size());
      for (int src : srcVars) someEndDisabled.push_back(-src);
      solver.addClause(std::move(someEndDisabled));
    }
  }
  // Unconditionally enabled internal transitions exclude their source.
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    const AtomicType& type = *system.instance(i).type;
    const ComponentInvariant& inv = result.componentInvariants[i];
    for (std::size_t ti = 0; ti < type.transitionCount(); ++ti) {
      const Transition& t = type.transition(static_cast<int>(ti));
      if (t.port != kInternalPort || !inv.guardFeasible[ti]) continue;
      if (!inv.reachableLocations[static_cast<std::size_t>(t.from)]) continue;
      if (t.guard.isTrue()) {
        solver.addClause({-atPlace(Place{static_cast<int>(i), t.from})});
      }
    }
  }
  result.booleanVariables = static_cast<std::size_t>(solver.variableCount());

  const auto finishStats = [&] {
    result.satConflicts = solver.conflicts();
    result.satDecisions = solver.decisions();
  };

  std::set<std::vector<Place>> known(result.traps.begin(), result.traps.end());
  const int batch = std::max(1, options.witnessBatch);
  // Same refinement budget as the legacy loop, counted in witnesses (the
  // legacy loop processes exactly one witness per round).
  constexpr int kMaxWitnesses = 4096;
  int remaining = kMaxWitnesses;
  while (remaining > 0) {
    g_rounds.add();
    if (solver.solve() == sat::Result::kUnsat) {
      finishStats();
      result.verdict = DFinderVerdict::kDeadlockFree;
      return result;
    }
    // Collect up to `batch` distinct witnesses: each blocking clause is
    // guarded by a fresh selector assumed true only during this
    // collection, so the blocks vanish from later rounds (the adopted
    // trap clauses subsume them).
    std::vector<std::vector<char>> occupied;
    std::vector<std::vector<int>> witnessLocations;
    std::vector<sat::Lit> selectors;
    const auto extractWitness = [&] {
      std::vector<char> occ(static_cast<std::size_t>(pt.total), 0);
      std::vector<int> locs(system.instanceCount(), -1);
      for (int id = 0; id < pt.total; ++id) {
        if (solver.modelValue(at[static_cast<std::size_t>(id)])) {
          occ[static_cast<std::size_t>(id)] = 1;
          const Place& p = pt.place[static_cast<std::size_t>(id)];
          locs[static_cast<std::size_t>(p.instance)] = p.location;
        }
      }
      occupied.push_back(std::move(occ));
      witnessLocations.push_back(std::move(locs));
    };
    extractWitness();
    while (static_cast<int>(occupied.size()) < std::min(batch, remaining)) {
      const int selector = solver.newVar();
      std::vector<sat::Lit> block{-selector};
      const std::vector<char>& prev = occupied.back();
      for (int id = 0; id < pt.total; ++id) {
        if (prev[static_cast<std::size_t>(id)] != 0) {
          block.push_back(-at[static_cast<std::size_t>(id)]);
        }
      }
      solver.addClause(std::move(block));
      selectors.push_back(selector);
      // UNSAT here only means "no further distinct witness" — the batch
      // just ends; the next round's unassumed solve gives the verdict.
      if (solver.solve(selectors) != sat::Result::kSat) break;
      extractWitness();
    }
    g_witnesses.add(occupied.size());

    // Trap portfolio: one independent SAT query per witness, fanned out
    // over the worker pool; results land in per-witness slots and are
    // merged in witness order after the join barrier, so the adopted trap
    // sequence is identical to the serial run.
    std::vector<std::vector<Place>> found(occupied.size());
    parallelFor(occupied.size(), options.workers, [&](std::size_t j) {
      found[j] = trapExcludingFast(pt, ni, trapTmpl, occupied[j]);
    });
    for (std::size_t j = 0; j < occupied.size(); ++j) {
      result.witnessLocations = witnessLocations[j];
      if (found[j].empty()) {
        finishStats();
        result.verdict = DFinderVerdict::kPotentialDeadlock;
        return result;
      }
      if (known.insert(found[j]).second) {
        g_traps.add();
        std::vector<sat::Lit> clause;
        clause.reserve(found[j].size());
        for (const Place& p : found[j]) clause.push_back(atPlace(p));
        solver.addClause(std::move(clause));
        result.traps.push_back(std::move(found[j]));
      }
    }
    remaining -= static_cast<int>(occupied.size());
  }
  finishStats();
  result.verdict = DFinderVerdict::kPotentialDeadlock;
  return result;
}

}  // namespace

std::size_t strengthenWithAnalysis(const System& system,
                                   std::vector<ComponentInvariant>& componentInvariants) {
  // Both typeIntervals and guard feasibility are per type, not per
  // instance — compute the provably-dead set once however many instances
  // share the type, then apply it to each instance's invariant.
  const bool useCompiled = expr::compilationEnabled();
  std::map<const AtomicType*, std::vector<bool>> deadOf;
  std::size_t pruned = 0;
  for (std::size_t i = 0; i < system.instanceCount() && i < componentInvariants.size(); ++i) {
    const AtomicType& type = *system.instance(i).type;
    auto it = deadOf.find(&type);
    if (it == deadOf.end()) {
      const std::vector<analyze::Interval> intervals = analyze::typeIntervals(type);
      const analyze::IntervalEnv env = [&intervals](expr::VarRef r) {
        if (r.scope != 0 || r.index < 0 ||
            static_cast<std::size_t>(r.index) >= intervals.size()) {
          return analyze::Interval::top();
        }
        return intervals[static_cast<std::size_t>(r.index)];
      };
      std::vector<bool> dead(type.transitionCount(), false);
      for (std::size_t ti = 0; ti < type.transitionCount(); ++ti) {
        const Transition& t = type.transition(static_cast<int>(ti));
        if (t.guard.isTrue()) continue;
        bool provablyFalse = false;
        if (useCompiled) {
          // Abstractly execute the compiled guard bytecode (slot = local
          // variable index, the layout typeIntervals describes).
          const analyze::ProgramFacts g =
              analyze::analyzeProgram(type.compiledTransition(static_cast<int>(ti)).guard,
                                      intervals);
          provablyFalse = !g.mayRaise && g.value == analyze::Interval::singleton(0);
        } else {
          const analyze::ExprFacts g = analyze::analyzeExpr(t.guard, env);
          provablyFalse = !g.mayRaise && g.value == analyze::Interval::singleton(0);
        }
        dead[ti] = provablyFalse;
      }
      it = deadOf.emplace(&type, std::move(dead)).first;
    }
    ComponentInvariant& inv = componentInvariants[i];
    const std::vector<bool>& dead = it->second;
    for (std::size_t ti = 0; ti < dead.size() && ti < inv.guardFeasible.size(); ++ti) {
      if (inv.guardFeasible[ti] && dead[ti]) {
        inv.guardFeasible[ti] = false;
        ++pruned;
      }
    }
  }
  return pruned;
}

std::vector<ComponentInvariant> componentInvariants(const System& system,
                                                    const DFinderOptions& options) {
  system.validate();
  // Instances share AtomicTypes and the invariant is a property of the
  // type alone: compute one invariant per distinct type — across the
  // portfolio, the exploration of unrelated types being independent —
  // and copy it to every instance.
  std::vector<const AtomicType*> distinct;
  std::map<const AtomicType*, std::size_t> indexOf;
  std::vector<std::size_t> typeIndex(system.instanceCount(), 0);
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    const AtomicType* type = system.instance(i).type.get();
    const auto [it, fresh] = indexOf.emplace(type, distinct.size());
    if (fresh) distinct.push_back(type);
    typeIndex[i] = it->second;
  }
  std::vector<ComponentInvariant> perType(distinct.size());
  parallelFor(distinct.size(), options.workers, [&](std::size_t k) {
    perType[k] = componentInvariant(*distinct[k], options.component);
  });
  g_invComputed.add(distinct.size());
  g_invReused.add(system.instanceCount() - distinct.size());
  std::vector<ComponentInvariant> invariants(system.instanceCount());
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    invariants[i] = perType[typeIndex[i]];
  }
  // The abstract-interpretation feed runs before the interaction net is
  // built so provably-dead guards vanish from both DIS and the net.
  if (expr::analysisEnabled()) g_guardsPruned.add(strengthenWithAnalysis(system, invariants));
  return invariants;
}

DFinderResult checkDeadlockFreedom(const System& system, const DFinderOptions& options) {
  system.validate();
  if (options.legacyPipeline) {
    std::vector<ComponentInvariant> invs;
    invs.reserve(system.instanceCount());
    for (std::size_t i = 0; i < system.instanceCount(); ++i) {
      invs.push_back(componentInvariant(*system.instance(i).type, options.component));
    }
    if (expr::analysisEnabled()) g_guardsPruned.add(strengthenWithAnalysis(system, invs));
    return legacyCheckWith(system, std::move(invs), {});
  }
  return fastCheck(system, componentInvariants(system, options), {}, options, nullptr);
}

DFinderResult checkDeadlockFreedomWith(const System& system,
                                       std::vector<ComponentInvariant> componentInvariants,
                                       std::vector<std::vector<Place>> traps,
                                       const DFinderOptions& options,
                                       const InteractionNet* prebuiltNet) {
  if (options.legacyPipeline) {
    return legacyCheckWith(system, std::move(componentInvariants), std::move(traps));
  }
  return fastCheck(system, std::move(componentInvariants), std::move(traps), options,
                   prebuiltNet);
}

}  // namespace cbip::verify
