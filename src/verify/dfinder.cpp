#include "verify/dfinder.hpp"

#include <map>
#include <ostream>

#include "analyze/analyze.hpp"
#include "obs/obs.hpp"
#include "sat/solver.hpp"
#include "util/require.hpp"

namespace cbip::verify {

namespace {
// Telemetry (src/obs): counts only, never steers the verdict.
const obs::Counter g_rounds("dfinder.rounds");
const obs::Counter g_traps("dfinder.traps");
const obs::Counter g_guardsPruned("dfinder.guards_pruned");
}  // namespace

const char* to_string(DFinderVerdict verdict) {
  switch (verdict) {
    case DFinderVerdict::kDeadlockFree: return "kDeadlockFree";
    case DFinderVerdict::kPotentialDeadlock: return "kPotentialDeadlock";
  }
  return "<invalid DFinderVerdict>";
}

std::ostream& operator<<(std::ostream& os, DFinderVerdict verdict) {
  return os << to_string(verdict);
}

namespace {

/// Searches a trap of `net` that is initially marked but completely
/// unoccupied in the control state `occupied` (such a trap is an
/// invariant that *excludes* this state). Returns the minimized trap, or
/// empty if none exists.
std::vector<Place> trapExcluding(const System& system, const InteractionNet& net,
                                 const std::map<Place, bool>& occupied) {
  std::map<Place, int> varOf;
  std::vector<Place> places;
  sat::Solver solver;
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    const AtomicType& type = *system.instance(i).type;
    for (std::size_t l = 0; l < type.locationCount(); ++l) {
      const Place p{static_cast<int>(i), static_cast<int>(l)};
      varOf[p] = solver.newVar();
      places.push_back(p);
    }
  }
  for (const NetTransition& t : net.transitions) {
    std::vector<sat::Lit> post;
    post.reserve(t.post.size());
    for (const Place& q : t.post) post.push_back(varOf.at(q));
    for (const Place& p : t.pre) {
      std::vector<sat::Lit> clause{-varOf.at(p)};
      clause.insert(clause.end(), post.begin(), post.end());
      solver.addClause(std::move(clause));
    }
  }
  {
    std::vector<sat::Lit> initiallyMarkedClause;
    for (const Place& p : net.initial) initiallyMarkedClause.push_back(varOf.at(p));
    solver.addClause(std::move(initiallyMarkedClause));
  }
  // The trap must avoid every occupied place of the witness.
  for (const auto& [place, isOccupied] : occupied) {
    if (isOccupied) solver.addClause({-varOf.at(place)});
  }
  if (solver.solve() != sat::Result::kSat) return {};
  std::vector<Place> trap;
  for (const Place& p : places) {
    if (solver.modelValue(varOf.at(p))) trap.push_back(p);
  }
  // Greedy minimization, keeping trap-ness and initial marking (removing
  // places can only help the exclusion property).
  for (std::size_t k = trap.size(); k > 0; --k) {
    std::vector<Place> candidate = trap;
    candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(k - 1));
    if (!candidate.empty() && isTrap(net, candidate) && initiallyMarked(net, candidate)) {
      trap = std::move(candidate);
    }
  }
  return trap;
}

}  // namespace

std::size_t strengthenWithAnalysis(const System& system,
                                   std::vector<ComponentInvariant>& componentInvariants) {
  // typeIntervals is per type, not per instance — compute it once however
  // many instances share the type.
  std::map<const AtomicType*, std::vector<analyze::Interval>> cache;
  std::size_t pruned = 0;
  for (std::size_t i = 0; i < system.instanceCount() && i < componentInvariants.size(); ++i) {
    const AtomicType& type = *system.instance(i).type;
    auto it = cache.find(&type);
    if (it == cache.end()) it = cache.emplace(&type, analyze::typeIntervals(type)).first;
    const std::vector<analyze::Interval>& intervals = it->second;
    const analyze::IntervalEnv env = [&intervals](expr::VarRef r) {
      if (r.scope != 0 || r.index < 0 ||
          static_cast<std::size_t>(r.index) >= intervals.size()) {
        return analyze::Interval::top();
      }
      return intervals[static_cast<std::size_t>(r.index)];
    };
    ComponentInvariant& inv = componentInvariants[i];
    for (std::size_t ti = 0; ti < type.transitionCount() && ti < inv.guardFeasible.size();
         ++ti) {
      if (!inv.guardFeasible[ti]) continue;  // already proven by exploration
      const Transition& t = type.transition(static_cast<int>(ti));
      if (t.guard.isTrue()) continue;
      const analyze::ExprFacts g = analyze::analyzeExpr(t.guard, env);
      if (!g.mayRaise && g.value == analyze::Interval::singleton(0)) {
        inv.guardFeasible[ti] = false;
        ++pruned;
      }
    }
  }
  return pruned;
}

DFinderResult checkDeadlockFreedom(const System& system, const DFinderOptions& options) {
  system.validate();
  std::vector<ComponentInvariant> invs;
  invs.reserve(system.instanceCount());
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    invs.push_back(componentInvariant(*system.instance(i).type, options.component));
  }
  // The abstract-interpretation feed runs before the interaction net is
  // built so provably-dead guards vanish from both DIS and the net.
  if (expr::analysisEnabled()) g_guardsPruned.add(strengthenWithAnalysis(system, invs));
  return checkDeadlockFreedomWith(system, std::move(invs), {});
}

DFinderResult checkDeadlockFreedomWith(const System& system,
                                       std::vector<ComponentInvariant> componentInvariants,
                                       std::vector<std::vector<Place>> traps) {
  DFinderResult result;
  result.componentInvariants = std::move(componentInvariants);
  result.traps = std::move(traps);
  const InteractionNet net = buildInteractionNet(system, result.componentInvariants);

  // Invariant-strengthening loop: check CI ∧ II ∧ DIS; on SAT, look for a
  // trap invariant excluding the witness and retry. Terminates because
  // every new trap kills at least the current witness (and the state
  // space of control witnesses is finite).
  constexpr int kMaxRounds = 4096;
  for (int round = 0; round < kMaxRounds; ++round) {
    g_rounds.add();
    sat::Solver solver;
    std::map<Place, int> at;
    for (std::size_t i = 0; i < system.instanceCount(); ++i) {
      const AtomicType& type = *system.instance(i).type;
      const ComponentInvariant& inv = result.componentInvariants[i];
      std::vector<sat::Lit> atLeastOne;
      std::vector<int> vars;
      for (std::size_t l = 0; l < type.locationCount(); ++l) {
        const int v = solver.newVar();
        at[Place{static_cast<int>(i), static_cast<int>(l)}] = v;
        // CI (control part): unreachable locations are excluded outright.
        if (!inv.reachableLocations[l]) {
          solver.addClause({-v});
        } else {
          atLeastOne.push_back(v);
          vars.push_back(v);
        }
      }
      require(!atLeastOne.empty(),
              "checkDeadlockFreedom: component with no reachable location");
      solver.addClause(atLeastOne);
      for (std::size_t a = 0; a < vars.size(); ++a) {
        for (std::size_t b = a + 1; b < vars.size(); ++b) {
          solver.addClause({-vars[a], -vars[b]});
        }
      }
    }

    // II: every trap invariant keeps a token.
    for (const std::vector<Place>& trap : result.traps) {
      std::vector<sat::Lit> clause;
      clause.reserve(trap.size());
      for (const Place& p : trap) clause.push_back(at.at(p));
      solver.addClause(std::move(clause));
    }

    // DIS: no interaction is enabled. For interaction a with participants
    // e_1..e_k, src_{a,e} = "participant e offers its port" (some feasible
    // transition's source location occupied); ¬enabled(a) = ∨_e ¬src_{a,e},
    // with at(i,l) → src_{a,e} binding the auxiliary from below.
    for (std::size_t ci = 0; ci < system.connectorCount(); ++ci) {
      const Connector& c = system.connector(ci);
      for (InteractionMask mask : c.feasibleMasks()) {
        std::vector<int> srcVars;
        bool alwaysDisabled = false;
        for (std::size_t e = 0; e < c.endCount(); ++e) {
          if ((mask & (InteractionMask{1} << e)) == 0) continue;
          const PortRef& p = c.end(e).port;
          const AtomicType& type =
              *system.instance(static_cast<std::size_t>(p.instance)).type;
          const ComponentInvariant& inv =
              result.componentInvariants[static_cast<std::size_t>(p.instance)];
          std::vector<int> sources;
          for (std::size_t ti = 0; ti < type.transitionCount(); ++ti) {
            const Transition& t = type.transition(static_cast<int>(ti));
            if (t.port != p.port || !inv.guardFeasible[ti]) continue;
            if (!inv.reachableLocations[static_cast<std::size_t>(t.from)]) continue;
            sources.push_back(at.at(Place{p.instance, t.from}));
          }
          if (sources.empty()) {
            alwaysDisabled = true;
            break;
          }
          const int src = solver.newVar();
          for (int loc : sources) solver.addClause({-loc, src});
          srcVars.push_back(src);
        }
        if (alwaysDisabled) continue;
        std::vector<sat::Lit> someEndDisabled;
        someEndDisabled.reserve(srcVars.size());
        for (int src : srcVars) someEndDisabled.push_back(-src);
        solver.addClause(std::move(someEndDisabled));
      }
    }
    // Unconditionally enabled internal transitions: their source location
    // can never be part of a deadlock (the engine settles taus).
    for (std::size_t i = 0; i < system.instanceCount(); ++i) {
      const AtomicType& type = *system.instance(i).type;
      const ComponentInvariant& inv = result.componentInvariants[i];
      for (std::size_t ti = 0; ti < type.transitionCount(); ++ti) {
        const Transition& t = type.transition(static_cast<int>(ti));
        if (t.port != kInternalPort || !inv.guardFeasible[ti]) continue;
        if (!inv.reachableLocations[static_cast<std::size_t>(t.from)]) continue;
        if (t.guard.isTrue()) {
          solver.addClause({-at.at(Place{static_cast<int>(i), t.from})});
        }
      }
    }

    result.booleanVariables = static_cast<std::size_t>(solver.variableCount());
    const sat::Result sr = solver.solve();
    result.satConflicts += solver.conflicts();
    result.satDecisions += solver.decisions();
    if (sr == sat::Result::kUnsat) {
      result.verdict = DFinderVerdict::kDeadlockFree;
      return result;
    }
    // Witness control state; try to exclude it with a fresh trap.
    std::map<Place, bool> occupied;
    result.witnessLocations.assign(system.instanceCount(), -1);
    for (const auto& [place, var] : at) {
      const bool occ = solver.modelValue(var);
      occupied[place] = occ;
      if (occ) {
        result.witnessLocations[static_cast<std::size_t>(place.instance)] = place.location;
      }
    }
    std::vector<Place> trap = trapExcluding(system, net, occupied);
    if (trap.empty()) {
      result.verdict = DFinderVerdict::kPotentialDeadlock;
      return result;
    }
    g_traps.add();
    result.traps.push_back(std::move(trap));
  }
  result.verdict = DFinderVerdict::kPotentialDeadlock;
  return result;
}

}  // namespace cbip::verify
