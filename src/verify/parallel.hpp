// Parallel portfolio substrate for the verification layer.
//
// D-Finder's work decomposes into batches of independent, deterministic
// sub-solves: one component invariant per distinct atomic type, one trap
// SAT query per witness of a refinement round. parallelFor runs such a
// batch across a transient std::jthread pool — workers pull indices from
// a shared atomic counter, write results only to their own slot, and are
// all joined before the call returns, so the caller merges in index
// order and the outcome is bit-identical to the serial run (the same
// discipline as the sharded engine's epoch workers: no shared mutable
// state between tasks, a full barrier before anything is read).
//
// The escape hatch, mirroring the execution-layer ones: setting the
// CBIP_NO_PARALLEL_VERIFY environment variable (or calling
// setParallelVerifyEnabled(false)) runs every batch inline, in index
// order, on the calling thread. Verdicts, witnesses and traps must be
// bit-identical either way; the differential tests rely on this switch.
#pragma once

#include <cstddef>
#include <functional>

namespace cbip::verify {

/// True when verification batches may fan out across worker threads;
/// defaults to true unless the CBIP_NO_PARALLEL_VERIFY environment
/// variable is set to a non-empty value other than "0".
bool parallelVerifyEnabled();

/// Overrides the parallel-verify switch (differential tests and
/// benchmarks toggle this to compare the threaded and serial portfolios
/// in one process).
void setParallelVerifyEnabled(bool on);

/// Runs fn(0), ..., fn(n - 1), each exactly once. While the hatch is on
/// and n > 1 the calls are distributed over min(workers, n) jthreads
/// (workers <= 0 means hardware concurrency); otherwise they run inline
/// in index order. Tasks must be independent — each may write only to
/// its own output slot. All workers are joined before the call returns;
/// if tasks threw, the exception of the lowest-index task is rethrown
/// (deterministically, regardless of thread timing).
void parallelFor(std::size_t n, int workers, const std::function<void(std::size_t)>& fn);

}  // namespace cbip::verify
