// Compositional invariant generation, following the D-Finder method
// (monograph Section 5.6, [4]).
//
// Two invariant families are computed:
//
//  * Component invariants (CI) — per atomic component, an
//    over-approximation of its reachable states computed *in isolation*
//    (every port transition may fire at any time). Data is handled by
//    cone-of-influence reduction: only variables that (transitively) feed
//    transition guards are tracked; if the reduced exploration still
//    exceeds its budget the component falls back to a location-only
//    invariant — always sound, possibly less precise.
//
//  * Interaction invariants (II) — global constraints induced by the glue,
//    computed as the initially-marked traps of the "interaction Petri
//    net" whose places are (instance, location) pairs and whose
//    transitions are the interactions. A trap S yields the invariant
//    "some place of S stays occupied". Traps are enumerated with the CDCL
//    SAT solver (one clause per pre-place per net transition), minimized
//    greedily, and blocked one by one.
#pragma once

#include <cstdint>
#include <vector>

#include "core/system.hpp"
#include "sat/solver.hpp"

namespace cbip::verify {

/// Reachable-state over-approximation of one component.
struct ComponentInvariant {
  /// Locations that can be reached (in isolation).
  std::vector<bool> reachableLocations;
  /// For every transition of the type: can its guard be true in some
  /// reachable state with matching location? (conservatively true when
  /// the data exploration fell back).
  std::vector<bool> guardFeasible;
  /// True when data exploration completed within budget (invariant is
  /// location+data based); false = location-only fallback.
  bool dataExact = false;
  /// Number of abstract states explored.
  std::uint64_t statesExplored = 0;
};

struct ComponentInvariantOptions {
  std::uint64_t maxStates = 20'000;
};

/// Computes the component invariant of instance `instance` of `system`.
ComponentInvariant componentInvariant(const AtomicType& type,
                                      const ComponentInvariantOptions& options = {});

/// A place of the interaction Petri net: (instance, location).
struct Place {
  int instance = 0;
  int location = 0;
  friend bool operator==(const Place&, const Place&) = default;
  friend auto operator<=>(const Place&, const Place&) = default;
};

/// One net transition: an interaction (or internal step) moving tokens.
struct NetTransition {
  std::vector<Place> pre;
  std::vector<Place> post;
};

/// The interaction Petri net of a system (used for trap computation).
struct InteractionNet {
  std::vector<NetTransition> transitions;
  /// Initially marked places (the components' initial locations).
  std::vector<Place> initial;
};

/// Builds the interaction net. `guardFeasible` (per instance) prunes
/// transitions whose guards the component invariants prove unreachable.
InteractionNet buildInteractionNet(const System& system,
                                   const std::vector<ComponentInvariant>& componentInvariants);

/// The net transitions contributed by connector `ci` alone (its feasible
/// masks × the cartesian product of feasible transitions per
/// participating end), in exactly the order buildInteractionNet emits
/// them. Incremental recertification caches these per-connector chunks
/// so a model edit rebuilds only the edited connector's slice of the net.
std::vector<NetTransition> connectorNetTransitions(
    const System& system, std::size_t ci,
    const std::vector<ComponentInvariant>& componentInvariants);

/// The internal (tau) net transitions of every instance, in
/// buildInteractionNet order. The tau chunk depends only on the component
/// invariants, never on connectors, so edits to the glue reuse it as-is.
std::vector<NetTransition> internalNetTransitions(
    const System& system, const std::vector<ComponentInvariant>& componentInvariants);

struct TrapOptions {
  /// Maximum number of traps to enumerate.
  std::size_t maxTraps = 64;
};

/// Enumerates initially-marked traps (each minimized greedily). Every
/// returned trap yields the invariant "at least one of these places is
/// occupied in every reachable state".
std::vector<std::vector<Place>> enumerateTraps(const System& system, const InteractionNet& net,
                                               const TrapOptions& options = {});

/// Direct check that `trap` is a trap of `net` (used by incremental
/// verification to test invariant preservation, and by tests).
bool isTrap(const InteractionNet& net, const std::vector<Place>& trap);

/// True iff some place of `trap` is initially marked.
bool initiallyMarked(const InteractionNet& net, const std::vector<Place>& trap);

}  // namespace cbip::verify
