// D-Finder-style compositional deadlock-freedom checking.
//
// The method (monograph Section 5.6, [4]): compute component invariants
// CI and interaction invariants II, encode the global "no interaction is
// enabled" condition DIS, and ask a SAT solver whether
//       CI  ∧  II  ∧  DIS
// is satisfiable. UNSAT certifies deadlock-freedom *compositionally* —
// without ever building the product state space, which is what lets it
// "run exponentially faster than existing monolithic verification tools"
// (experiment E6). SAT yields a *potential* deadlock (the abstraction may
// be too coarse); the witness control locations are reported so a
// directed monolithic search can confirm them.
//
// Two pipelines implement the refinement loop:
//
//  * The fast pipeline (default) keeps ONE incremental SAT solver alive
//    across refinement rounds (learnt clauses and VSIDS activity carry
//    over), computes component invariants once per distinct AtomicType
//    (instances share types, fanned out as a parallel portfolio —
//    verify/parallel, CBIP_NO_PARALLEL_VERIFY hatch), and answers each
//    per-witness trap query by copying a pre-encoded template solver and
//    adding only the occupied-place units — the same SAT instance as a
//    from-scratch rebuild, minus the per-clause re-encoding cost, so the
//    trap sequence is unchanged. DFinderOptions::witnessBatch > 1
//    additionally collects a batch of witnesses per round via
//    selector-guarded blocking clauses and fans the trap queries out
//    over the same portfolio. Merging is deterministic — traps are
//    adopted in witness order behind a join barrier — so verdict,
//    witness and trap sequence are bit-identical between the threaded
//    and serial runs.
//
//  * The legacy pipeline (DFinderOptions::legacyPipeline) is the
//    pre-optimization reference: per-instance tree-walking invariants, a
//    fresh SAT encoding per round, one witness per round, everything
//    serial. It is kept as the differential oracle (both pipelines must
//    agree on the verdict) and as the baseline arm of the bench_dfinder
//    speedup ratios.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/system.hpp"
#include "verify/invariants.hpp"

namespace cbip::verify {

struct DFinderOptions {
  ComponentInvariantOptions component;
  TrapOptions traps;
  /// Pre-PR-10 reference pipeline (see the file comment). With the
  /// CBIP_NO_COMPILE and CBIP_NO_PARALLEL_VERIFY hatches it reproduces
  /// the historical tree-walking serial behaviour exactly.
  bool legacyPipeline = false;
  /// Fast pipeline: witnesses collected (and trap queries solved) per
  /// refinement round — the width of the parallel trap portfolio.
  /// Values <= 1 mean one witness per round, which is also the
  /// measured sweet spot on the bench models: extra witnesses cost an
  /// assumption-guarded SAT solve each and tend to yield overlapping,
  /// redundant traps, while the template-copied trap query they feed is
  /// already cheap. Widths > 1 remain supported (and tested) for
  /// models whose trap queries are the bottleneck.
  int witnessBatch = 1;
  /// Worker threads for parallel batches (0 = hardware concurrency).
  /// Only consulted while parallelVerifyEnabled().
  int workers = 0;
};

enum class DFinderVerdict {
  kDeadlockFree,       // certified
  kPotentialDeadlock,  // abstraction admits a deadlocked valuation
};

/// Enumerator name ("kDeadlockFree", ...) for diagnostics and test output.
const char* to_string(DFinderVerdict verdict);
std::ostream& operator<<(std::ostream& os, DFinderVerdict verdict);

struct DFinderResult {
  DFinderVerdict verdict = DFinderVerdict::kPotentialDeadlock;
  /// When kPotentialDeadlock: a control-location witness per instance.
  std::vector<int> witnessLocations;
  /// Ingredients (exposed for inspection / reuse by incremental checks).
  std::vector<ComponentInvariant> componentInvariants;
  std::vector<std::vector<Place>> traps;
  /// Statistics.
  std::uint64_t satConflicts = 0;
  std::uint64_t satDecisions = 0;
  std::size_t booleanVariables = 0;
};

/// Strengthens component invariants with facts from the abstract
/// interpreter (src/analyze): every transition whose guard is provably
/// false under the component's per-variable value intervals
/// (analyze::typeIntervals — the same reachable-in-isolation contract as
/// componentInvariant) has guardFeasible cleared, shrinking the DIS
/// enablement sources and the interaction net before the SAT encoding.
/// While compilation is enabled the facts come from analyzeProgram over
/// the type's compiled guard bytecode; otherwise from analyzeExpr over
/// the symbolic tree. Returns the number of guards newly proven
/// infeasible. checkDeadlockFreedom applies this automatically while
/// expr::analysisEnabled(); callers of checkDeadlockFreedomWith that
/// build their own invariants may call it directly.
std::size_t strengthenWithAnalysis(const System& system,
                                   std::vector<ComponentInvariant>& componentInvariants);

/// Component invariants for every instance of `system`, computed once per
/// distinct AtomicType (instances share types, and the invariant is a
/// property of the type alone) — across the parallel portfolio when the
/// hatch is on — then strengthened with the abstract-interpretation feed
/// while expr::analysisEnabled().
std::vector<ComponentInvariant> componentInvariants(const System& system,
                                                    const DFinderOptions& options = {});

/// Runs the full D-Finder pipeline on `system`.
DFinderResult checkDeadlockFreedom(const System& system, const DFinderOptions& options = {});

/// Core of the check, reusing precomputed invariants and previously
/// proven traps (the incremental verifier calls this directly). When
/// `prebuiltNet` is non-null it must be buildInteractionNet(system,
/// componentInvariants) — the incremental verifier passes its cached
/// chunk concatenation to skip the rebuild.
DFinderResult checkDeadlockFreedomWith(const System& system,
                                       std::vector<ComponentInvariant> componentInvariants,
                                       std::vector<std::vector<Place>> traps,
                                       const DFinderOptions& options = {},
                                       const InteractionNet* prebuiltNet = nullptr);

}  // namespace cbip::verify
