// D-Finder-style compositional deadlock-freedom checking.
//
// The method (monograph Section 5.6, [4]): compute component invariants
// CI and interaction invariants II, encode the global "no interaction is
// enabled" condition DIS, and ask a SAT solver whether
//       CI  ∧  II  ∧  DIS
// is satisfiable. UNSAT certifies deadlock-freedom *compositionally* —
// without ever building the product state space, which is what lets it
// "run exponentially faster than existing monolithic verification tools"
// (experiment E6). SAT yields a *potential* deadlock (the abstraction may
// be too coarse); the witness control locations are reported so a
// directed monolithic search can confirm them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/system.hpp"
#include "verify/invariants.hpp"

namespace cbip::verify {

struct DFinderOptions {
  ComponentInvariantOptions component;
  TrapOptions traps;
};

enum class DFinderVerdict {
  kDeadlockFree,       // certified
  kPotentialDeadlock,  // abstraction admits a deadlocked valuation
};

/// Enumerator name ("kDeadlockFree", ...) for diagnostics and test output.
const char* to_string(DFinderVerdict verdict);
std::ostream& operator<<(std::ostream& os, DFinderVerdict verdict);

struct DFinderResult {
  DFinderVerdict verdict = DFinderVerdict::kPotentialDeadlock;
  /// When kPotentialDeadlock: a control-location witness per instance.
  std::vector<int> witnessLocations;
  /// Ingredients (exposed for inspection / reuse by incremental checks).
  std::vector<ComponentInvariant> componentInvariants;
  std::vector<std::vector<Place>> traps;
  /// Statistics.
  std::uint64_t satConflicts = 0;
  std::uint64_t satDecisions = 0;
  std::size_t booleanVariables = 0;
};

/// Strengthens component invariants with facts from the abstract
/// interpreter (src/analyze): every transition whose guard is provably
/// false under the component's per-variable value intervals
/// (analyze::typeIntervals — the same reachable-in-isolation contract as
/// componentInvariant) has guardFeasible cleared, shrinking the DIS
/// enablement sources and the interaction net before the SAT encoding.
/// Returns the number of guards newly proven infeasible.
/// checkDeadlockFreedom applies this automatically while
/// expr::analysisEnabled(); callers of checkDeadlockFreedomWith that
/// build their own invariants may call it directly.
std::size_t strengthenWithAnalysis(const System& system,
                                   std::vector<ComponentInvariant>& componentInvariants);

/// Runs the full D-Finder pipeline on `system`.
DFinderResult checkDeadlockFreedom(const System& system, const DFinderOptions& options = {});

/// Core of the check, reusing precomputed invariants (the incremental
/// verifier calls this directly).
DFinderResult checkDeadlockFreedomWith(const System& system,
                                       std::vector<ComponentInvariant> componentInvariants,
                                       std::vector<std::vector<Place>> traps);

}  // namespace cbip::verify
