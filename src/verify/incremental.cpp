#include "verify/incremental.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cbip::verify {

IncrementalVerifier::IncrementalVerifier(System components, DFinderOptions options)
    : system_(std::move(components)), options_(options) {
  system_.validate();
  componentInvariants_.reserve(system_.instanceCount());
  for (std::size_t i = 0; i < system_.instanceCount(); ++i) {
    componentInvariants_.push_back(
        componentInvariant(*system_.instance(i).type, options_.component));
  }
}

IncrementalVerifier::StepResult IncrementalVerifier::addConnector(Connector connector) {
  system_.addConnector(std::move(connector));
  system_.validate();

  const InteractionNet net = buildInteractionNet(system_, componentInvariants_);

  // Preservation test: a trap stays an invariant iff it is still a trap of
  // the extended net (new transitions must feed it back).
  StepResult step;
  std::vector<std::vector<Place>> kept;
  for (std::vector<Place>& trap : traps_) {
    if (isTrap(net, trap) && initiallyMarked(net, trap)) {
      kept.push_back(std::move(trap));
      ++step.trapsKept;
    } else {
      ++step.trapsDropped;
    }
  }
  traps_ = std::move(kept);

  // The deadlock check strengthens the invariant set on demand
  // (witness-driven trap discovery); keep whatever it found for the next
  // construction step.
  DFinderResult check = checkDeadlockFreedomWith(system_, componentInvariants_, traps_);
  step.trapsNew = check.traps.size() - traps_.size();
  traps_ = std::move(check.traps);
  step.verdict = check.verdict;
  return step;
}

}  // namespace cbip::verify
