#include "verify/incremental.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace cbip::verify {

namespace {

/// isTrap restricted to one chunk: every chunk transition taking a token
/// from `trap` must feed one back. The rest of the net respected the
/// trap before the edit and is unchanged, so this is the whole
/// preservation test for an addition.
bool chunkRespectsTrap(const std::vector<NetTransition>& chunk, const std::vector<Place>& trap) {
  const auto inTrap = [&trap](const Place& p) {
    return std::find(trap.begin(), trap.end(), p) != trap.end();
  };
  for (const NetTransition& t : chunk) {
    const bool takes = std::any_of(t.pre.begin(), t.pre.end(), inTrap);
    if (!takes) continue;
    const bool gives = std::any_of(t.post.begin(), t.post.end(), inTrap);
    if (!gives) return false;
  }
  return true;
}

}  // namespace

IncrementalVerifier::IncrementalVerifier(System components, DFinderOptions options)
    : system_(std::move(components)), options_(options) {
  system_.validate();
  // Same invariants (per-type computation + analysis strengthening) as a
  // full checkDeadlockFreedom run — required for the incremental-vs-full
  // agreement the tests enforce.
  componentInvariants_ = componentInvariants(system_, options_);
  for (std::size_t ci = 0; ci < system_.connectorCount(); ++ci) {
    connectorChunks_.push_back(connectorNetTransitions(system_, ci, componentInvariants_));
  }
  tauChunk_ = internalNetTransitions(system_, componentInvariants_);
  initial_.reserve(system_.instanceCount());
  for (std::size_t i = 0; i < system_.instanceCount(); ++i) {
    initial_.push_back(Place{static_cast<int>(i), system_.instance(i).type->initialLocation()});
  }
}

IncrementalVerifier::StepResult IncrementalVerifier::recheck(
    StepResult step, std::vector<std::vector<Place>> seeds) {
  InteractionNet net;
  net.initial = initial_;
  for (const std::vector<NetTransition>& chunk : connectorChunks_) {
    net.transitions.insert(net.transitions.end(), chunk.begin(), chunk.end());
  }
  net.transitions.insert(net.transitions.end(), tauChunk_.begin(), tauChunk_.end());

  const std::size_t seeded = seeds.size();
  DFinderResult check =
      checkDeadlockFreedomWith(system_, componentInvariants_, std::move(seeds), options_, &net);
  step.trapsNew = check.traps.size() - seeded;
  traps_ = std::move(check.traps);
  step.verdict = check.verdict;
  step.witnessLocations = std::move(check.witnessLocations);
  return step;
}

IncrementalVerifier::StepResult IncrementalVerifier::addConnector(Connector connector) {
  const auto ci = static_cast<std::size_t>(system_.addConnector(std::move(connector)));
  system_.validate();
  connectorChunks_.push_back(connectorNetTransitions(system_, ci, componentInvariants_));
  const std::vector<NetTransition>& fresh = connectorChunks_.back();

  // Dependency tracking: the edit touches only the new connector's
  // participant instances. A trap supported entirely elsewhere is
  // preserved without any test; an intersecting trap is rechecked
  // against the new chunk only. The initial marking is untouched, so
  // initiallyMarked holds from adoption time.
  std::vector<char> touched(system_.instanceCount(), 0);
  for (const ConnectorEnd& e : system_.connector(ci).ends()) {
    touched[static_cast<std::size_t>(e.port.instance)] = 1;
  }

  StepResult step;
  std::vector<std::vector<Place>> kept;
  for (std::vector<Place>& trap : traps_) {
    const bool intersects = std::any_of(trap.begin(), trap.end(), [&touched](const Place& p) {
      return touched[static_cast<std::size_t>(p.instance)] != 0;
    });
    if (intersects) {
      ++step.trapsRechecked;
      if (!chunkRespectsTrap(fresh, trap)) {
        ++step.trapsDropped;
        continue;
      }
    }
    ++step.trapsKept;
    kept.push_back(std::move(trap));
  }
  traps_.clear();
  return recheck(std::move(step), std::move(kept));
}

IncrementalVerifier::StepResult IncrementalVerifier::removeConnector(std::size_t i) {
  require(i < connectorChunks_.size(), "IncrementalVerifier::removeConnector: out of range");
  system_.removeConnector(i);
  connectorChunks_.erase(connectorChunks_.begin() + static_cast<std::ptrdiff_t>(i));

  // The trap condition quantifies over net transitions and the set only
  // shrank: every established trap (and its initial marking) survives.
  StepResult step;
  step.trapsKept = traps_.size();
  std::vector<std::vector<Place>> kept = std::move(traps_);
  traps_.clear();
  return recheck(std::move(step), std::move(kept));
}

}  // namespace cbip::verify
