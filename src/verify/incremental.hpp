// Incremental construction + verification (monograph Section 5.6, [4]).
//
// BIP systems are built incrementally by adding interactions to a set of
// components. Re-verifying from scratch after every addition wastes the
// work already done; D-Finder's incremental method instead
//   1. keeps the component invariants (components never change),
//   2. tests which established interaction invariants (traps) are
//      *preserved* by the new interactions — a trap of the extended net is
//      exactly a trap of the old net that the new transitions respect, so
//      the preservation test is a cheap direct check per trap,
//   3. tops up with freshly enumerated traps only if needed, and
//   4. re-runs the SAT deadlock check with the merged invariants.
//
// Experiment E7 measures the saving against from-scratch re-verification.
#pragma once

#include <vector>

#include "core/system.hpp"
#include "verify/dfinder.hpp"

namespace cbip::verify {

class IncrementalVerifier {
 public:
  struct StepResult {
    DFinderVerdict verdict = DFinderVerdict::kPotentialDeadlock;
    std::size_t trapsKept = 0;     // invariants preserved by the addition
    std::size_t trapsDropped = 0;  // invalidated and discarded
    std::size_t trapsNew = 0;      // newly enumerated
  };

  /// `components` must already hold all instances; connectors are added
  /// one by one with addConnector.
  explicit IncrementalVerifier(System components, DFinderOptions options = {});

  /// Adds a connector and re-checks deadlock freedom incrementally.
  StepResult addConnector(Connector connector);

  const System& system() const { return system_; }

 private:
  System system_;
  DFinderOptions options_;
  std::vector<ComponentInvariant> componentInvariants_;
  std::vector<std::vector<Place>> traps_;
};

}  // namespace cbip::verify
