// Incremental construction + verification (monograph Section 5.6, [4]).
//
// BIP systems are built incrementally by adding interactions to a set of
// components. Re-verifying from scratch after every edit wastes the work
// already done; D-Finder's incremental method instead
//   1. keeps the component invariants (components never change under
//      glue edits),
//   2. keeps the interaction net as per-connector *chunks* plus one tau
//      chunk, so an edit rebuilds exactly one chunk,
//   3. tests which established interaction invariants (traps) survive
//      the edit, using dependency tracking: a trap whose support set
//      (the instances its places belong to) misses the edited
//      connector's participants is preserved outright — the new
//      transitions can neither take from nor feed it; an intersecting
//      trap is rechecked against the *new chunk only* (the rest of the
//      net respected it before, and still does). Removing a connector
//      preserves every trap (the trap condition quantifies over
//      transitions, and the set only shrank),
//   4. re-runs the SAT deadlock check seeded with the surviving traps
//      (witness-driven discovery tops up whatever the edit invalidated).
//
// Every step's verdict provably agrees with full recomputation: both the
// incremental and the from-scratch check run the same refinement loop to
// a fixpoint, and a surviving trap is a genuine invariant of the edited
// net, so seeding can never flip UNSAT to SAT or vice versa. The
// randomized incremental-vs-full suite in tests/test_verify.cpp enforces
// this. Experiment E7 measures the saving against from-scratch
// re-verification (BM_DFinderIncrementalVsFull).
#pragma once

#include <vector>

#include "core/system.hpp"
#include "verify/dfinder.hpp"

namespace cbip::verify {

class IncrementalVerifier {
 public:
  struct StepResult {
    DFinderVerdict verdict = DFinderVerdict::kPotentialDeadlock;
    std::size_t trapsKept = 0;       // invariants preserved by the edit
    std::size_t trapsRechecked = 0;  // support intersected the edit, tested
    std::size_t trapsDropped = 0;    // invalidated and discarded
    std::size_t trapsNew = 0;        // newly discovered by the re-check
    /// When kPotentialDeadlock: a control-location witness per instance.
    std::vector<int> witnessLocations;
  };

  /// `components` must already hold all instances (connectors are fine
  /// too — their chunks are built up front); further connectors are then
  /// added/removed one edit at a time.
  explicit IncrementalVerifier(System components, DFinderOptions options = {});

  /// Adds a connector and re-checks deadlock freedom incrementally.
  StepResult addConnector(Connector connector);

  /// Removes the connector at index `i` (System::removeConnector
  /// semantics: later connectors shift down) and re-checks. Every
  /// established trap survives a removal.
  StepResult removeConnector(std::size_t i);

  const System& system() const { return system_; }
  const std::vector<ComponentInvariant>& invariants() const { return componentInvariants_; }
  const std::vector<std::vector<Place>>& traps() const { return traps_; }

 private:
  /// Concatenates the cached chunks (connector order, then tau) into the
  /// net buildInteractionNet would produce, runs the seeded check, and
  /// folds the outcome into `step`.
  StepResult recheck(StepResult step, std::vector<std::vector<Place>> seeds);

  System system_;
  DFinderOptions options_;
  std::vector<ComponentInvariant> componentInvariants_;
  std::vector<std::vector<Place>> traps_;
  /// Net chunks: one per connector (same index), plus the tau chunk and
  /// the initial marking, which only instance edits could invalidate.
  std::vector<std::vector<NetTransition>> connectorChunks_;
  std::vector<NetTransition> tauChunk_;
  std::vector<Place> initial_;
};

}  // namespace cbip::verify
