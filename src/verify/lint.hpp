// Verification-fed model lints: diagnostics proven by D-Finder
// ingredients rather than by the abstract interpreter.
//
// The analyze/ linter (analyze/lint.hpp) classifies guards one expression
// at a time; these two diagnostics need whole-component reachability and
// glue-level enablement facts, which is exactly what the D-Finder front
// end already computes:
//
//   * kUnreachableLocation — a control location the component invariant
//     (BFS over the COI-reduced state space, analysis-strengthened)
//     proves unreachable even in isolation. Reported once per distinct
//     AtomicType, naming the instances that share it.
//
//   * kInteractionNeverEnabled — an interaction (connector × feasible
//     mask) some participating end of which has no feasible source
//     transition: under the component invariants the interaction can
//     never fire. This is the same condition under which the DIS
//     encoding skips the interaction (`alwaysDisabled`), surfaced as a
//     model defect instead of silently dropped.
//
// Both lints are sound relative to the invariants: a reported location
// really is unreachable, a reported interaction really never fires
// (invariants over-approximate reachability, so what they exclude is
// truly excluded). Diagnostics reuse analyze::Diagnostic so cbip-lint
// prints one uniform stream.
#pragma once

#include <vector>

#include "analyze/lint.hpp"
#include "core/system.hpp"
#include "verify/dfinder.hpp"

namespace cbip::verify {

/// Runs both verification-fed lints over `system` (which must be
/// validated). Computes component invariants via
/// verify::componentInvariants — once per distinct type, strengthened by
/// the abstract-interpretation feed while expr::analysisEnabled().
std::vector<analyze::Diagnostic> lintVerify(const System& system,
                                            const DFinderOptions& options = {});

}  // namespace cbip::verify
