// Monolithic explicit-state model checker (the "NuSMV baseline").
//
// Exhaustive BFS over the global state space of a composite component,
// with deadlock detection and invariant checking. This is the
// correctness-by-checking comparator of experiment E6: it is exact, but
// its cost grows with the product state space — exponentially in the
// number of components — which is precisely the limitation (monograph
// Section 4.3, "state explosion") that D-Finder's compositional method
// avoids.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/semantics.hpp"
#include "core/system.hpp"

namespace cbip::verify {

struct ReachOptions {
  std::uint64_t maxStates = 1'000'000;
  bool withPriorities = true;
  /// Optional state property; exploration records the first violation.
  std::function<bool(const GlobalState&)> invariant;
  /// Stop at the first deadlock / violation instead of exploring fully.
  bool stopAtFirstDefect = false;
};

struct ReachResult {
  bool complete = false;  // false if maxStates was hit
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  std::vector<GlobalState> deadlocks;           // up to a small cap
  std::optional<GlobalState> invariantViolation;
};

/// Explores the reachable global state space.
ReachResult explore(const System& system, const ReachOptions& options = {});

/// Labelled transition graph of the reachable state space, for
/// equivalence checks (fusion bisimulation, refinement tests).
struct LabeledGraph {
  /// states[i] is the i-th discovered state; 0 is initial.
  std::vector<GlobalState> states;
  /// edges[i] = sorted (label, successor) pairs of state i.
  std::vector<std::vector<std::pair<std::string, std::size_t>>> edges;
};

LabeledGraph buildGraph(const System& system, std::uint64_t maxStates = 100'000,
                        bool withPriorities = true);

/// Checks label-wise bisimilarity of two labelled graphs starting from
/// their initial states (partition refinement on the disjoint union).
bool bisimilar(const LabeledGraph& a, const LabeledGraph& b);

/// Simulation preorder: true iff every behaviour of `a` can be matched by
/// `b` (a's initial state is simulated by b's). This is the order of the
/// architecture lattice (Section 5.5.2): A1 <= A2 when A1 refines A2.
bool simulates(const LabeledGraph& a, const LabeledGraph& b);

}  // namespace cbip::verify
