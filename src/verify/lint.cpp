#include "verify/lint.hpp"

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/atomic.hpp"
#include "core/connector.hpp"

namespace cbip::verify {

using analyze::Diagnostic;
using analyze::LintKind;

std::vector<Diagnostic> lintVerify(const System& system, const DFinderOptions& options) {
  std::vector<Diagnostic> out;
  const std::vector<ComponentInvariant> invs = componentInvariants(system, options);

  // Unreachable locations: once per distinct type (instances share the
  // invariant), naming every instance that has it.
  std::map<const AtomicType*, std::vector<std::size_t>> instancesOf;
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    instancesOf[system.instance(i).type.get()].push_back(i);
  }
  std::vector<const AtomicType*> typeOrder;  // first-instance order, deterministic
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    const AtomicType* t = system.instance(i).type.get();
    if (instancesOf[t].front() == i) typeOrder.push_back(t);
  }
  for (const AtomicType* type : typeOrder) {
    const std::vector<std::size_t>& holders = instancesOf[type];
    const ComponentInvariant& inv = invs[holders.front()];
    std::string who;
    for (std::size_t k = 0; k < holders.size() && k < 3; ++k) {
      who += (k == 0 ? "" : ", ") + system.instance(holders[k]).name;
    }
    if (holders.size() > 3) who += ", ...";
    for (std::size_t l = 0; l < type->locationCount(); ++l) {
      if (inv.reachableLocations[l]) continue;
      out.push_back(Diagnostic{
          LintKind::kUnreachableLocation,
          "atom " + type->name() + " (instance " + who + ")",
          "location '" + type->locationName(static_cast<int>(l)) +
              "' is unreachable under the component invariant" +
              (inv.dataExact ? "" : " (location-only fallback)")});
    }
  }

  // Never-enabled interactions: connector × feasible mask where some
  // participating end has no feasible source transition — the exact
  // condition the DIS encoding uses to drop the interaction.
  for (std::size_t ci = 0; ci < system.connectorCount(); ++ci) {
    const Connector& c = system.connector(ci);
    const std::vector<std::string> labels = system.endLabels(c);
    const std::string where =
        "connector " + (c.name().empty() ? "#" + std::to_string(ci) : c.name());
    for (InteractionMask mask : c.feasibleMasks()) {
      for (std::size_t e = 0; e < c.endCount(); ++e) {
        if ((mask & (InteractionMask{1} << e)) == 0) continue;
        const PortRef& p = c.end(e).port;
        const AtomicType& type = *system.instance(static_cast<std::size_t>(p.instance)).type;
        const ComponentInvariant& inv = invs[static_cast<std::size_t>(p.instance)];
        bool hasSource = false;
        for (std::size_t ti = 0; ti < type.transitionCount() && !hasSource; ++ti) {
          const Transition& t = type.transition(static_cast<int>(ti));
          hasSource = t.port == p.port && inv.guardFeasible[ti] &&
                      inv.reachableLocations[static_cast<std::size_t>(t.from)];
        }
        if (hasSource) continue;
        out.push_back(Diagnostic{
            LintKind::kInteractionNeverEnabled, where,
            "interaction " + c.maskLabel(mask, labels) + " is provably never enabled: end " +
                labels[e] + " has no feasible transition on port '" + type.port(p.port).name +
                "' under the component invariant"});
        break;  // one finding per interaction is enough
      }
    }
  }
  return out;
}

}  // namespace cbip::verify
