#include "verify/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace cbip::verify {

namespace {

// Telemetry (src/obs): counts only, never steers the verdict.
const obs::Counter g_batches("verify.parallel.batches");
const obs::Counter g_tasks("verify.parallel.tasks");
const obs::Counter g_inline("verify.parallel.inline_tasks");

std::atomic<bool>& parallelVerifyFlag() {
  static std::atomic<bool> flag = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): first call happens inside a
    // function-local static initializer, which the runtime serializes.
    const char* env = std::getenv("CBIP_NO_PARALLEL_VERIFY");
    const bool disabled = env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
    return !disabled;
  }();
  return flag;
}

}  // namespace

bool parallelVerifyEnabled() { return parallelVerifyFlag().load(std::memory_order_relaxed); }

void setParallelVerifyEnabled(bool on) {
  parallelVerifyFlag().store(on, std::memory_order_relaxed);
}

void parallelFor(std::size_t n, int workers, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::size_t pool = workers > 0 ? static_cast<std::size_t>(workers)
                                 : std::max(1U, std::thread::hardware_concurrency());
  pool = std::min(pool, n);
  if (!parallelVerifyEnabled() || n == 1 || pool <= 1) {
    g_inline.add(n);
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  g_batches.add();
  g_tasks.add(n);
  // Workers pull indices from a shared counter and record any exception in
  // the slot of the task that threw; after the join barrier the
  // lowest-index exception is rethrown so failure, like success, is
  // independent of thread timing.
  std::vector<std::exception_ptr> errors(n);
  std::atomic<std::size_t> next{0};
  {
    std::vector<std::jthread> threads;
    threads.reserve(pool);
    for (std::size_t w = 0; w < pool; ++w) {
      threads.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          try {
            fn(i);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      });
    }
  }  // jthread destructors join: full barrier before results are read.
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

}  // namespace cbip::verify
