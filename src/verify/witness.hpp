// Witness confirmation: accountability for D-Finder verdicts.
//
// The compositional check is conservative: kPotentialDeadlock may be an
// artifact of the abstraction. The monograph demands accountability —
// "it is possible to explain, at each design step, which among the
// requirements are satisfied and which may not be satisfied" — so this
// module closes the loop: a *directed* search over the concrete state
// space, guided by the witness control locations, either produces a real
// reachable deadlock (the verdict is confirmed, with a trace) or exhausts
// the (bounded) search without one (the witness is reported spurious
// within the explored bound).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "verify/dfinder.hpp"

namespace cbip::verify {

enum class WitnessStatus {
  kConfirmed,        // a reachable deadlock matching the control witness
  kRealButDifferent, // a reachable deadlock, at other control locations
  kSpurious,         // no deadlock within the explored bound (complete)
  kInconclusive,     // state budget exhausted before an answer
};

struct WitnessResult {
  WitnessStatus status = WitnessStatus::kInconclusive;
  std::optional<GlobalState> deadlock;
  /// Interaction labels leading from the initial state to the deadlock.
  std::vector<std::string> trace;
  std::uint64_t statesExplored = 0;
};

/// Searches for a concrete deadlock, preferring successors whose control
/// locations move toward `witnessLocations` (greedy best-first on Hamming
/// distance to the witness). Pass the result of a kPotentialDeadlock
/// check.
WitnessResult confirmDeadlockWitness(const System& system,
                                     const std::vector<int>& witnessLocations,
                                     std::uint64_t maxStates = 200'000);

}  // namespace cbip::verify
