#include "verify/reachability.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "util/require.hpp"

namespace cbip::verify {

namespace {

struct StateHasher {
  std::size_t operator()(const GlobalState& s) const {
    return static_cast<std::size_t>(hashState(s));
  }
};

constexpr std::size_t kDeadlockCap = 8;

/// Successor enumeration with labels: (label, next state).
std::vector<std::pair<std::string, GlobalState>> labeledSuccessors(const System& system,
                                                                   const GlobalState& state,
                                                                   bool withPriorities) {
  std::vector<std::pair<std::string, GlobalState>> out;
  std::vector<EnabledInteraction> enabled = enabledInteractions(system, state);
  if (enabled.empty()) return out;
  if (withPriorities) enabled = applyPriorities(system, state, std::move(enabled));
  for (const EnabledInteraction& ei : enabled) {
    const std::string label = interactionLabel(system, ei);
    std::vector<int> choice(ei.ends.size(), 0);
    while (true) {
      GlobalState next = state;
      execute(system, next, ei, choice);
      out.emplace_back(label, std::move(next));
      std::size_t k = 0;
      while (k < choice.size()) {
        if (static_cast<std::size_t>(++choice[k]) < ei.choices[k].size()) break;
        choice[k] = 0;
        ++k;
      }
      if (k == choice.size()) break;
    }
  }
  return out;
}

GlobalState settledInitial(const System& system) {
  GlobalState init = initialState(system);
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    runInternal(*system.instance(i).type, init.components[i]);
  }
  return init;
}

}  // namespace

ReachResult explore(const System& system, const ReachOptions& options) {
  system.validate();
  ReachResult result;
  std::unordered_map<GlobalState, std::size_t, StateHasher> seen;
  std::deque<GlobalState> frontier;

  GlobalState init = settledInitial(system);
  seen.emplace(init, 0);
  frontier.push_back(std::move(init));

  while (!frontier.empty()) {
    const GlobalState state = std::move(frontier.front());
    frontier.pop_front();
    ++result.states;

    if (options.invariant && !options.invariant(state)) {
      if (!result.invariantViolation.has_value()) result.invariantViolation = state;
      if (options.stopAtFirstDefect) return result;
    }

    const auto succ = labeledSuccessors(system, state, options.withPriorities);
    if (succ.empty()) {
      if (result.deadlocks.size() < kDeadlockCap) result.deadlocks.push_back(state);
      if (options.stopAtFirstDefect) return result;
      continue;
    }
    for (const auto& [label, next] : succ) {
      ++result.transitions;
      if (seen.size() >= options.maxStates) {
        result.complete = false;
        return result;
      }
      const auto [it, fresh] = seen.emplace(next, seen.size());
      if (fresh) frontier.push_back(next);
    }
  }
  result.complete = true;
  return result;
}

LabeledGraph buildGraph(const System& system, std::uint64_t maxStates, bool withPriorities) {
  system.validate();
  LabeledGraph g;
  std::unordered_map<GlobalState, std::size_t, StateHasher> ids;
  std::deque<std::size_t> frontier;

  GlobalState init = settledInitial(system);
  ids.emplace(init, 0);
  g.states.push_back(std::move(init));
  g.edges.emplace_back();
  frontier.push_back(0);

  while (!frontier.empty()) {
    const std::size_t id = frontier.front();
    frontier.pop_front();
    const GlobalState state = g.states[id];  // copy: g.states may reallocate
    for (auto& [label, next] : labeledSuccessors(system, state, withPriorities)) {
      auto it = ids.find(next);
      std::size_t nid = 0;
      if (it == ids.end()) {
        require(g.states.size() < maxStates, "buildGraph: state budget exhausted");
        nid = g.states.size();
        ids.emplace(next, nid);
        g.states.push_back(std::move(next));
        g.edges.emplace_back();
        frontier.push_back(nid);
      } else {
        nid = it->second;
      }
      g.edges[id].emplace_back(label, nid);
    }
    std::sort(g.edges[id].begin(), g.edges[id].end());
    g.edges[id].erase(std::unique(g.edges[id].begin(), g.edges[id].end()), g.edges[id].end());
  }
  return g;
}

bool bisimilar(const LabeledGraph& a, const LabeledGraph& b) {
  // Partition refinement on the disjoint union of both graphs.
  const std::size_t n = a.states.size() + b.states.size();
  auto edgesOf = [&](std::size_t i) -> const std::vector<std::pair<std::string, std::size_t>>& {
    return i < a.states.size() ? a.edges[i] : b.edges[i - a.states.size()];
  };
  auto globalId = [&](std::size_t i, std::size_t local) {
    return i < a.states.size() ? local : local + a.states.size();
  };

  std::vector<std::size_t> color(n, 0);
  std::size_t numColors = 1;
  while (true) {
    // Signature: previous color + sorted set of (label, successor color).
    // Including the previous color makes each round a strict refinement,
    // so a stable color count means a stable partition.
    using Sig = std::pair<std::size_t, std::vector<std::pair<std::string, std::size_t>>>;
    std::map<Sig, std::size_t> sigToColor;
    std::vector<std::size_t> next(n);
    for (std::size_t i = 0; i < n; ++i) {
      Sig sig;
      sig.first = color[i];
      for (const auto& [label, to] : edgesOf(i)) {
        sig.second.emplace_back(label, color[globalId(i, to)]);
      }
      std::sort(sig.second.begin(), sig.second.end());
      sig.second.erase(std::unique(sig.second.begin(), sig.second.end()), sig.second.end());
      const auto [it, fresh] = sigToColor.emplace(std::move(sig), sigToColor.size());
      next[i] = it->second;
    }
    const std::size_t newCount = sigToColor.size();
    color = std::move(next);
    if (newCount == numColors) break;
    numColors = newCount;
  }
  return color[0] == color[a.states.size()];
}

bool simulates(const LabeledGraph& a, const LabeledGraph& b) {
  // Greatest simulation via fixpoint on the relation R ⊆ A x B:
  // (p, q) ∈ R iff for every p --l--> p' there is q --l--> q' with
  // (p', q') ∈ R. Start from the full relation and prune.
  const std::size_t na = a.states.size(), nb = b.states.size();
  std::vector<std::vector<bool>> rel(na, std::vector<bool>(nb, true));
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t p = 0; p < na; ++p) {
      for (std::size_t q = 0; q < nb; ++q) {
        if (!rel[p][q]) continue;
        bool ok = true;
        for (const auto& [label, pNext] : a.edges[p]) {
          bool matched = false;
          for (const auto& [labelB, qNext] : b.edges[q]) {
            if (labelB == label && rel[pNext][qNext]) {
              matched = true;
              break;
            }
          }
          if (!matched) {
            ok = false;
            break;
          }
        }
        if (!ok) {
          rel[p][q] = false;
          changed = true;
        }
      }
    }
  }
  return rel[0][0];
}

}  // namespace cbip::verify
