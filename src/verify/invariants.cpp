#include "verify/invariants.hpp"

#include <algorithm>
#include <deque>
#include <iterator>
#include <map>
#include <set>
#include <span>
#include <unordered_set>

#include "expr/compile.hpp"
#include "util/require.hpp"

namespace cbip::verify {

namespace {

/// Cone of influence: variables read by guards, closed under the
/// data dependencies of actions that write them.
std::vector<bool> relevantVariables(const AtomicType& type) {
  std::vector<bool> relevant(type.variableCount(), false);
  auto markExpr = [&relevant](const Expr& e) {
    std::vector<expr::VarRef> refs;
    e.collectVars(refs);
    bool changed = false;
    for (const expr::VarRef& r : refs) {
      if (!relevant[static_cast<std::size_t>(r.index)]) {
        relevant[static_cast<std::size_t>(r.index)] = true;
        changed = true;
      }
    }
    return changed;
  };
  for (std::size_t i = 0; i < type.transitionCount(); ++i) {
    markExpr(type.transition(static_cast<int>(i)).guard);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < type.transitionCount(); ++i) {
      for (const expr::Assign& a : type.transition(static_cast<int>(i)).actions) {
        if (relevant[static_cast<std::size_t>(a.target.index)]) {
          if (markExpr(a.value)) changed = true;
        }
      }
    }
  }
  return relevant;
}

/// Context over the reduced variable vector (slot per relevant variable).
class ReducedContext final : public expr::EvalContext {
 public:
  ReducedContext(const std::vector<int>& slotOf, std::vector<Value>& slots)
      : slotOf_(&slotOf), slots_(&slots) {}
  Value read(expr::VarRef r) const override {
    const int slot = (*slotOf_)[static_cast<std::size_t>(r.index)];
    requireEval(slot >= 0, "component invariant: read of abstracted variable");
    return (*slots_)[static_cast<std::size_t>(slot)];
  }
  void write(expr::VarRef r, Value v) override {
    const int slot = (*slotOf_)[static_cast<std::size_t>(r.index)];
    requireEval(slot >= 0, "component invariant: write to abstracted variable");
    (*slots_)[static_cast<std::size_t>(slot)] = v;
  }

 private:
  const std::vector<int>* slotOf_;
  std::vector<Value>* slots_;
};

/// Location-only fallback: graph reachability ignoring all data.
ComponentInvariant locationOnlyInvariant(const AtomicType& type, std::uint64_t explored) {
  ComponentInvariant inv;
  inv.dataExact = false;
  inv.statesExplored = explored;
  inv.reachableLocations.assign(type.locationCount(), false);
  std::deque<int> frontier;
  inv.reachableLocations[static_cast<std::size_t>(type.initialLocation())] = true;
  frontier.push_back(type.initialLocation());
  while (!frontier.empty()) {
    const int loc = frontier.front();
    frontier.pop_front();
    for (std::size_t i = 0; i < type.transitionCount(); ++i) {
      const Transition& t = type.transition(static_cast<int>(i));
      if (t.from != loc) continue;
      if (!inv.reachableLocations[static_cast<std::size_t>(t.to)]) {
        inv.reachableLocations[static_cast<std::size_t>(t.to)] = true;
        frontier.push_back(t.to);
      }
    }
  }
  inv.guardFeasible.assign(type.transitionCount(), false);
  for (std::size_t i = 0; i < type.transitionCount(); ++i) {
    const Transition& t = type.transition(static_cast<int>(i));
    inv.guardFeasible[i] = inv.reachableLocations[static_cast<std::size_t>(t.from)];
  }
  return inv;
}

}  // namespace

ComponentInvariant componentInvariant(const AtomicType& type,
                                      const ComponentInvariantOptions& options) {
  type.validate();
  const std::vector<bool> relevant = relevantVariables(type);
  std::vector<int> slotOf(type.variableCount(), -1);
  int slots = 0;
  for (std::size_t v = 0; v < type.variableCount(); ++v) {
    if (relevant[v]) slotOf[v] = slots++;
  }

  // Compiled exploration (the default): every transition's guard + the
  // actions surviving the cone-of-influence reduction are lowered once
  // into a single fused ExprProgram over the reduced frame, so the BFS
  // below runs bytecode instead of walking shared_ptr Expr trees through
  // a virtual context. An empty program stands for a trivially-true guard
  // with no surviving actions (nothing to evaluate). Successor states are
  // bit-identical to the tree walk: compileFused applies the assignment
  // block sequentially over the live frame exactly like ReducedContext.
  // CBIP_NO_COMPILE restores the interpreted walk.
  const bool useCompiled = expr::compilationEnabled();
  std::vector<expr::ExprProgram> fused;
  if (useCompiled) {
    const expr::SlotMap reducedSlot = [&slotOf](expr::VarRef r) {
      require(r.scope == 0 && r.index >= 0 && static_cast<std::size_t>(r.index) < slotOf.size() &&
                  slotOf[static_cast<std::size_t>(r.index)] >= 0,
              "component invariant: reference outside the reduced frame");
      return slotOf[static_cast<std::size_t>(r.index)];
    };
    fused.reserve(type.transitionCount());
    for (std::size_t i = 0; i < type.transitionCount(); ++i) {
      const Transition& t = type.transition(static_cast<int>(i));
      // Actions writing abstracted variables are dropped; COI closure
      // guarantees the kept values read only relevant (mapped) variables.
      std::vector<expr::Assign> kept;
      for (const expr::Assign& a : t.actions) {
        if (slotOf[static_cast<std::size_t>(a.target.index)] >= 0) kept.push_back(a);
      }
      if (t.guard.isTrue() && kept.empty()) {
        fused.emplace_back();
        continue;
      }
      fused.push_back(expr::compileFused(t.guard, kept, reducedSlot));
    }
  }

  using AbsState = std::pair<int, std::vector<Value>>;
  std::set<AbsState> seen;
  std::deque<AbsState> frontier;

  AbsState init{type.initialLocation(), std::vector<Value>(static_cast<std::size_t>(slots))};
  for (std::size_t v = 0; v < type.variableCount(); ++v) {
    if (slotOf[v] >= 0) {
      init.second[static_cast<std::size_t>(slotOf[v])] = type.variable(static_cast<int>(v)).init;
    }
  }
  seen.insert(init);
  frontier.push_back(std::move(init));

  std::vector<bool> guardFeasible(type.transitionCount(), false);
  std::uint64_t explored = 0;

  while (!frontier.empty()) {
    const AbsState state = std::move(frontier.front());
    frontier.pop_front();
    ++explored;
    for (std::size_t i = 0; i < type.transitionCount(); ++i) {
      const Transition& t = type.transition(static_cast<int>(i));
      if (t.from != state.first) continue;
      std::vector<Value> vars = state.second;
      if (useCompiled) {
        // One fused dispatch: guard test + surviving actions applied in
        // place; result 0 means the guard failed (frame untouched).
        const expr::ExprProgram& p = fused[i];
        if (!p.empty() && p.run(std::span<Value>(vars), 0) == 0) continue;
        guardFeasible[i] = true;
      } else {
        ReducedContext ctx(slotOf, vars);
        if (!t.guard.isTrue() && t.guard.eval(ctx) == 0) continue;
        guardFeasible[i] = true;
        // Apply only the actions whose targets survive the reduction.
        for (const expr::Assign& a : t.actions) {
          if (slotOf[static_cast<std::size_t>(a.target.index)] >= 0) {
            ctx.write(a.target, a.value.eval(ctx));
          }
        }
      }
      AbsState next{t.to, std::move(vars)};
      if (seen.size() >= options.maxStates) {
        return locationOnlyInvariant(type, explored);
      }
      if (seen.insert(next).second) frontier.push_back(std::move(next));
    }
  }

  ComponentInvariant inv;
  inv.dataExact = true;
  inv.statesExplored = explored;
  inv.guardFeasible = std::move(guardFeasible);
  inv.reachableLocations.assign(type.locationCount(), false);
  for (const AbsState& s : seen) {
    inv.reachableLocations[static_cast<std::size_t>(s.first)] = true;
  }
  return inv;
}

namespace {

/// Transitions of `instance` on `port` that the component invariant has
/// not ruled out (feasible guard, reachable source).
std::vector<const Transition*> feasibleTransitionsOf(
    const System& system, const std::vector<ComponentInvariant>& componentInvariants,
    int instance, int port) {
  const AtomicType& type = *system.instance(static_cast<std::size_t>(instance)).type;
  const ComponentInvariant& inv = componentInvariants[static_cast<std::size_t>(instance)];
  std::vector<const Transition*> out;
  for (std::size_t ti = 0; ti < type.transitionCount(); ++ti) {
    const Transition& t = type.transition(static_cast<int>(ti));
    if (t.port != port) continue;
    if (!inv.guardFeasible[ti]) continue;
    if (!inv.reachableLocations[static_cast<std::size_t>(t.from)]) continue;
    out.push_back(&t);
  }
  return out;
}

}  // namespace

std::vector<NetTransition> connectorNetTransitions(
    const System& system, std::size_t ci,
    const std::vector<ComponentInvariant>& componentInvariants) {
  require(componentInvariants.size() == system.instanceCount(),
          "connectorNetTransitions: invariant count mismatch");
  require(ci < system.connectorCount(), "connectorNetTransitions: connector out of range");
  std::vector<NetTransition> chunk;
  const Connector& c = system.connector(ci);
  for (InteractionMask mask : c.feasibleMasks()) {
    std::vector<int> instances;
    std::vector<std::vector<const Transition*>> options;
    bool feasible = true;
    for (std::size_t e = 0; e < c.endCount(); ++e) {
      if ((mask & (InteractionMask{1} << e)) == 0) continue;
      const PortRef& p = c.end(e).port;
      auto ts = feasibleTransitionsOf(system, componentInvariants, p.instance, p.port);
      if (ts.empty()) {
        feasible = false;
        break;
      }
      instances.push_back(p.instance);
      options.push_back(std::move(ts));
    }
    if (!feasible) continue;
    std::vector<std::size_t> pick(options.size(), 0);
    while (true) {
      NetTransition nt;
      for (std::size_t k = 0; k < options.size(); ++k) {
        nt.pre.push_back(Place{instances[k], options[k][pick[k]]->from});
        nt.post.push_back(Place{instances[k], options[k][pick[k]]->to});
      }
      chunk.push_back(std::move(nt));
      std::size_t k = 0;
      while (k < pick.size()) {
        if (++pick[k] < options[k].size()) break;
        pick[k] = 0;
        ++k;
      }
      if (k == pick.size()) break;
    }
  }
  return chunk;
}

std::vector<NetTransition> internalNetTransitions(
    const System& system, const std::vector<ComponentInvariant>& componentInvariants) {
  require(componentInvariants.size() == system.instanceCount(),
          "internalNetTransitions: invariant count mismatch");
  std::vector<NetTransition> chunk;
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    for (const Transition* t :
         feasibleTransitionsOf(system, componentInvariants, static_cast<int>(i), kInternalPort)) {
      chunk.push_back(NetTransition{{Place{static_cast<int>(i), t->from}},
                                    {Place{static_cast<int>(i), t->to}}});
    }
  }
  return chunk;
}

InteractionNet buildInteractionNet(const System& system,
                                   const std::vector<ComponentInvariant>& componentInvariants) {
  require(componentInvariants.size() == system.instanceCount(),
          "buildInteractionNet: invariant count mismatch");
  InteractionNet net;
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    net.initial.push_back(
        Place{static_cast<int>(i), system.instance(i).type->initialLocation()});
  }
  // Connector chunks in index order, then the tau chunk — the order the
  // incremental verifier's cached-chunk concatenation reproduces.
  for (std::size_t ci = 0; ci < system.connectorCount(); ++ci) {
    std::vector<NetTransition> chunk = connectorNetTransitions(system, ci, componentInvariants);
    net.transitions.insert(net.transitions.end(), std::make_move_iterator(chunk.begin()),
                           std::make_move_iterator(chunk.end()));
  }
  std::vector<NetTransition> taus = internalNetTransitions(system, componentInvariants);
  net.transitions.insert(net.transitions.end(), std::make_move_iterator(taus.begin()),
                         std::make_move_iterator(taus.end()));
  return net;
}

bool isTrap(const InteractionNet& net, const std::vector<Place>& trap) {
  std::set<Place> s(trap.begin(), trap.end());
  for (const NetTransition& t : net.transitions) {
    const bool takes = std::any_of(t.pre.begin(), t.pre.end(),
                                   [&s](const Place& p) { return s.count(p) > 0; });
    if (!takes) continue;
    const bool gives = std::any_of(t.post.begin(), t.post.end(),
                                   [&s](const Place& p) { return s.count(p) > 0; });
    if (!gives) return false;
  }
  return true;
}

bool initiallyMarked(const InteractionNet& net, const std::vector<Place>& trap) {
  std::set<Place> s(trap.begin(), trap.end());
  return std::any_of(net.initial.begin(), net.initial.end(),
                     [&s](const Place& p) { return s.count(p) > 0; });
}

std::vector<std::vector<Place>> enumerateTraps(const System& system, const InteractionNet& net,
                                               const TrapOptions& options) {
  // Place universe: every (instance, location).
  std::map<Place, int> varOf;
  std::vector<Place> places;
  sat::Solver solver;
  for (std::size_t i = 0; i < system.instanceCount(); ++i) {
    const AtomicType& type = *system.instance(i).type;
    for (std::size_t l = 0; l < type.locationCount(); ++l) {
      const Place p{static_cast<int>(i), static_cast<int>(l)};
      varOf[p] = solver.newVar();
      places.push_back(p);
    }
  }

  // Trap condition: pre-place in S => some post-place in S.
  for (const NetTransition& t : net.transitions) {
    std::vector<sat::Lit> post;
    post.reserve(t.post.size());
    for (const Place& q : t.post) post.push_back(varOf.at(q));
    for (const Place& p : t.pre) {
      std::vector<sat::Lit> clause;
      clause.push_back(-varOf.at(p));
      clause.insert(clause.end(), post.begin(), post.end());
      solver.addClause(std::move(clause));
    }
  }
  // Initially marked (also forces non-emptiness).
  {
    std::vector<sat::Lit> clause;
    for (const Place& p : net.initial) clause.push_back(varOf.at(p));
    solver.addClause(std::move(clause));
  }

  std::vector<std::vector<Place>> traps;
  while (traps.size() < options.maxTraps && solver.solve() == sat::Result::kSat) {
    std::vector<Place> trap;
    for (const Place& p : places) {
      if (solver.modelValue(varOf.at(p))) trap.push_back(p);
    }
    // Greedy minimization (keeps trap-ness and initial marking).
    for (std::size_t k = trap.size(); k > 0; --k) {
      std::vector<Place> candidate = trap;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(k - 1));
      if (!candidate.empty() && isTrap(net, candidate) && initiallyMarked(net, candidate)) {
        trap = std::move(candidate);
      }
    }
    // Block this trap (and all its supersets).
    std::vector<sat::Lit> blocking;
    blocking.reserve(trap.size());
    for (const Place& p : trap) blocking.push_back(-varOf.at(p));
    solver.addClause(std::move(blocking));
    traps.push_back(std::move(trap));
  }
  return traps;
}

}  // namespace cbip::verify
