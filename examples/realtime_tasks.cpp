// Timed BIP (monograph §5.2.2, Fig 5.3, [1]): periodic tasks on one
// processor, analysed symbolically (zone graph — deadline misses surface
// as timelocks) and executed concretely (eager engine); plus the timing
// anomaly that motivates time robustness.
//
//   $ ./examples/realtime_tasks
#include <cstdio>

#include "timed/models.hpp"
#include "timed/robustness.hpp"
#include "timed/timed.hpp"
#include "util/rng.hpp"

using namespace cbip;
using namespace cbip::timed;

int main() {
  std::printf("== periodic task set: periods {6, 9}, WCET {2, 3}, one cpu ==\n");
  const TimedSystem sys = periodicTasks({6, 9}, {2, 3});
  Rng rng(3);
  const TimedRunResult run = runTimed(sys, 24, rng);
  for (const TimedStep& s : run.steps) {
    std::printf("  t=%-4lld %s\n", static_cast<long long>(s.time), s.label.c_str());
  }
  std::printf("eager execution: %s\n", run.timelocked ? "TIMELOCK (deadline miss)" : "all deadlines met");

  std::printf("\n== symbolic analysis: does ANY dispatching meet the deadlines? ==\n");
  const ZoneReachResult lazy = zoneReachability(sys);
  std::printf("zone states: %llu, timelock reachable: %s\n",
              static_cast<unsigned long long>(lazy.zoneStates), lazy.timelock ? "yes" : "no");
  std::printf("(a reachable timelock = some lazy dispatch misses a deadline —\n"
              " Section 5.2.2: deadline misses appear as deadlocks/timelocks in the model)\n");

  std::printf("\n== overload: WCET 5 > period 4 ==\n");
  const ZoneReachResult overload = zoneReachability(periodicTasks({4}, {5}));
  std::printf("timelock reachable: %s (the miss is certain)\n",
              overload.timelock ? "yes" : "no");

  std::printf("\n== the timing anomaly (E10) ==\n");
  const Anomaly a = anomalyInstance();
  std::printf("%zu tasks, %d machines, greedy list scheduling:\n", a.graph.tasks.size(),
              a.machines);
  std::printf("  makespan at WCET durations:     %lld\n",
              static_cast<long long>(a.wcetMakespan));
  std::printf("  makespan with FASTER durations: %lld   <-- larger!\n",
              static_cast<long long>(a.reducedMakespan));
  std::printf("\"safety for WCET does not guarantee safety for smaller execution times\";\n"
              "a deterministic (static) schedule of the same tasks is provably monotone.\n");
  return 0;
}
