// Distributed deployment (monograph §5.5.3 / Fig 5.4 / [7]): take the
// dining philosophers, refine the multiparty interactions into the
// 3-layer S/R-BIP protocol stack, and run it on the simulated
// asynchronous network under each conflict-resolution protocol.
//
//   $ ./examples/distributed_philosophers
#include <cstdio>

#include "distributed/srbip.hpp"
#include "models/models.hpp"

using namespace cbip;

int main() {
  const int n = 5;
  const System sys = models::philosophersAtomic(n);
  std::printf("system: %d philosophers + %d forks, %zu rendezvous connectors\n", n, n,
              sys.connectorCount());

  std::printf("\n== 3-layer S/R-BIP, one interaction-protocol node per connector ==\n");
  std::printf("%14s %12s %12s %12s %10s\n", "CRP", "virt.time", "messages", "coord.msgs",
              "replay ok");
  for (const dist::CrpKind crp : {dist::CrpKind::kCentralized, dist::CrpKind::kTokenRing,
                                  dist::CrpKind::kPhilosophers}) {
    dist::DistributedOptions opt;
    opt.crp = crp;
    opt.commitTarget = 100;
    opt.seed = 7;
    const dist::DistributedResult r =
        dist::runDistributed(sys, dist::blockPerConnector(sys), opt);
    const char* name = crp == dist::CrpKind::kCentralized    ? "centralized"
                       : crp == dist::CrpKind::kTokenRing    ? "token-ring"
                                                             : "philosophers";
    std::printf("%14s %12lld %12llu %12llu %10s\n", name,
                static_cast<long long>(r.virtualTime),
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.coordinationMessages),
                dist::replayAgainstReference(sys, r.commits) ? "yes" : "NO");
  }
  std::printf("(replay ok = the distributed trace is a valid run of the centralized\n"
              " semantics: the observational equivalence of Fig 5.4)\n");

  std::printf("\n== why the conflict-resolution layer exists (Fig 5.4, bottom) ==\n");
  const System triangle = dist::conflictTriangle();
  dist::DistributedOptions opt;
  opt.commitTarget = 20;
  const auto naive = dist::runNaiveRefinement(triangle, opt);
  std::printf("naive per-interaction refinement on a conflict cycle: %zu commits, %s\n",
              naive.commits.size(),
              naive.deadlocked ? "DEADLOCKED (components committed unilaterally)"
                               : "completed");
  const auto layered = dist::runDistributed(triangle, dist::blockPerConnector(triangle), opt);
  std::printf("3-layer runtime on the same system:                  %zu commits, %s\n",
              layered.commits.size(), layered.deadlocked ? "DEADLOCKED" : "live");
  return 0;
}
