// Quickstart: build a BIP system three ways (C++ API, textual DSL), run
// it, verify it, and fuse it — the whole single-host-language flow of the
// monograph in one file.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/flatten.hpp"
#include "engine/engine.hpp"
#include "frontends/bipdsl/bipdsl.hpp"
#include "models/models.hpp"
#include "verify/dfinder.hpp"
#include "verify/reachability.hpp"

using namespace cbip;

int main() {
  std::printf("== 1. Build: producer -> bounded buffer -> consumer (C++ API) ==\n");
  System sys = models::producerConsumer(/*capacity=*/3);
  std::printf("instances: %zu, connectors: %zu\n", sys.instanceCount(), sys.connectorCount());

  std::printf("\n== 2. Execute: 12 steps under the sequential engine ==\n");
  RandomPolicy policy(42);
  SequentialEngine engine(sys, policy);
  RunOptions opt;
  opt.maxSteps = 12;
  const RunResult run = engine.run(opt);
  for (const TraceEvent& e : run.trace.events) std::printf("  step %llu: %s\n",
      static_cast<unsigned long long>(e.step), e.label.c_str());
  std::printf("final state: %s\n", formatState(sys, run.finalState).c_str());

  std::printf("\n== 3. Verify: D-Finder compositional deadlock check ==\n");
  const auto verdict = verify::checkDeadlockFreedom(sys);
  std::printf("verdict: %s (%zu interaction invariants)\n",
              verdict.verdict == verify::DFinderVerdict::kDeadlockFree
                  ? "deadlock-free (certified without building the product)"
                  : "potential deadlock",
              verdict.traps.size());

  std::printf("\n== 4. Same system from the BIP textual DSL ==\n");
  const System parsed = dsl::parseSystem(R"(
atom Producer
  var next = 0
  port put exports next
  location run init
  from run on put do next := next + 1 goto run
end
atom Consumer
  var got = 0
  port take exports got
  location run init
  from run on take goto run
end
system
  instance p : Producer
  instance c : Consumer
  connector move = sync(p.put, c.take) down c.got := p.next
end
)");
  std::printf("parsed: %zu instances, %zu connectors — same objects, same engines\n",
              parsed.instanceCount(), parsed.connectorCount());

  std::printf("\n== 5. Source-to-source fusion (deployment onto one processor) ==\n");
  const FusedComponent fused = fuse(sys);
  std::printf("fused into 1 atomic component: %zu variables, %zu transitions\n",
              fused.type->variableCount(), fused.type->transitionCount());
  AtomicState s = initialState(*fused.type);
  Rng rng(42);
  for (int i = 0; i < 4; ++i) std::printf("  fused step: %s\n", step(fused, s, rng).c_str());
  return 0;
}
