// The monograph's Fig 5.2 end-to-end: parse the Lustre integrator
// Y = X + pre(Y), embed it into BIP (one component per operator, global
// str/cmp rendezvous, one wire per dataflow edge), run both semantics and
// compare the streams.
//
//   $ ./examples/lustre_integrator
#include <cstdio>

#include "frontends/lustre/lustre.hpp"

using namespace cbip;

int main() {
  const char* source = R"(
-- Fig 5.2 of "Rigorous System Design": the integrator.
node integrator(x: int) returns (y: int);
let
  y = x + pre(y);
tel
)";
  std::printf("== source ==\n%s\n", source);
  const lustre::Program program = lustre::parse(source);
  const lustre::NodeDecl& node = program.node("integrator");

  std::printf("== embedding into BIP (the chi/sigma translation of Section 5.4) ==\n");
  const lustre::Embedding e = lustre::embed(node, {{"x", lustre::InputStream{0, 1, 0}}});
  std::printf("operator components: %d (B+ and Bpre, as in the figure)\n",
              e.operatorComponents);
  std::printf("instances: %zu (source, +, pre, sink)\n", e.system.instanceCount());
  std::printf("connectors: %zu (str, cmp, and %d dataflow wires)\n",
              e.system.connectorCount(), e.wires);

  std::printf("\n== running 10 synchronous cycles, x = 0,1,2,... ==\n");
  const auto streams = lustre::runEmbedded(e, 10);
  lustre::Interpreter reference(node);
  std::printf("%6s %8s %12s %12s\n", "cycle", "x", "BIP y", "reference y");
  for (int t = 0; t < 10; ++t) {
    const auto ref = reference.step({{"x", t}});
    std::printf("%6d %8d %12lld %12lld\n", t, t,
                static_cast<long long>(streams.at("y")[static_cast<std::size_t>(t)]),
                static_cast<long long>(ref.at("y")));
  }
  std::printf("\nY accumulates X exactly as the synchronous semantics demands:\n"
              "the translation preserved both the structure and the behaviour.\n");
  return 0;
}
