// Correct-by-construction design with architectures (monograph §5.5):
// apply the mutual-exclusion architecture and a fixed-priority scheduling
// policy to the same workers, then verify that the composition ⊕ keeps
// both characteristic properties — without a hand-written proof.
//
//   $ ./examples/mutual_exclusion
#include <cstdio>

#include "arch/architecture.hpp"
#include "engine/engine.hpp"
#include "verify/dfinder.hpp"

using namespace cbip;

namespace {

AtomicTypePtr makeWorker() {
  auto t = std::make_shared<AtomicType>("Worker");
  const int out = t->addLocation("outside");
  const int in = t->addLocation("inside");
  const int enter = t->addPort("enter");
  const int leave = t->addPort("leave");
  t->addTransition(out, enter, in);
  t->addTransition(in, leave, out);
  t->setInitialLocation(out);
  return t;
}

}  // namespace

int main() {
  System sys;
  auto worker = makeWorker();
  std::vector<arch::MutexClient> clients;
  for (int i = 0; i < 4; ++i) {
    const int w = sys.addInstance("w" + std::to_string(i), worker);
    clients.push_back(arch::MutexClient{w, worker->portIndex("enter"),
                                        worker->portIndex("leave"),
                                        {worker->locationIndex("inside")}});
  }

  std::printf("== applying the Mutex architecture (token coordinator) ==\n");
  const arch::AppliedArchitecture mutex = arch::applyMutex(sys, clients);
  std::printf("characteristic property: %s\n", mutex.property.c_str());

  std::printf("\n== composing with a FixedPriority scheduling architecture ==\n");
  const arch::AppliedArchitecture fps = arch::applyFixedPriority(
      sys, {"mutexBegin0", "mutexBegin1", "mutexBegin2", "mutexBegin3"});
  std::printf("characteristic property: %s\n", fps.property.c_str());

  std::printf("\n== verifying the composition (the ⊕ check) ==\n");
  const arch::CompositionResult r = arch::verifyComposition(sys, {mutex, fps});
  std::printf("properties hold: %s; deadlock-free: %s; states checked: %llu\n",
              r.propertiesHold ? "yes" : "NO", r.deadlockFree ? "yes" : "NO",
              static_cast<unsigned long long>(r.statesChecked));

  std::printf("\n== D-Finder certifies the composed system compositionally ==\n");
  const auto df = verify::checkDeadlockFreedom(sys);
  std::printf("verdict: %s\n", df.verdict == verify::DFinderVerdict::kDeadlockFree
                                   ? "deadlock-free (certified)"
                                   : "potential deadlock");

  std::printf("\n== a run under the engine: priority order is visible ==\n");
  RandomPolicy policy(7);
  SequentialEngine engine(sys, policy);
  RunOptions opt;
  opt.maxSteps = 8;
  for (const TraceEvent& e : engine.run(opt).trace.events) {
    std::printf("  %s\n", e.label.c_str());
  }
  return 0;
}
