// Sharded vs multithreaded engine throughput at 256 components, plus the
// skewed-load scaling family the online rebalancer targets.
//
// The multithreaded engine pays one offer/execute message round through
// per-component worker threads for every interaction; the sharded engine
// pays three barriers per epoch of up to shards * epochBatch interactions
// and runs everything shard-local lock-free on per-shard frames. The
// acceptance shape for the shard subsystem is >= 1.5x engine-step
// throughput over MtEngine at 256 components / 4 shards (Release).
//
// BM_Partition256 tracks the partitioner itself (greedy graph growing on
// the 256-node philosophers ring).
//
// BM_ShardedSkewed scales models::skewedPairs to 256 / 4096 / 10^5
// components (10^6 with CBIP_BENCH_LARGE=1): the live pairs (1/64 of the
// total) all sit in the low shards, so the static partition (arg 1 = 0)
// serializes on one shard's epoch quota while the adaptive scheduler
// (arg 1 = 1) steals the surplus and migrates the hot pairs apart.
// compare_benches.py gates the rebalanced-over-static ratio > 1.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "engine/engine.hpp"
#include "engine/engine_mt.hpp"
#include "models/models.hpp"
#include "shard/engine_sharded.hpp"

namespace {

using namespace cbip;

constexpr int kPhilosophers = 128;  // 128 philosophers + 128 forks = 256 components
constexpr std::uint64_t kSteps = 500;

void BM_MtEngine256(benchmark::State& state) {
  const System sys = models::philosophersAtomic(kPhilosophers);
  RandomPolicy policy(3);
  MultiThreadEngine engine(sys, policy);
  for (auto _ : state) {
    MtOptions opt;
    opt.maxSteps = kSteps;
    opt.recordTrace = false;
    benchmark::DoNotOptimize(engine.run(opt));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kSteps));
}
BENCHMARK(BM_MtEngine256)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ShardedEngine256(benchmark::State& state) {
  const System sys = models::philosophersAtomic(kPhilosophers);
  shard::ShardedEngine engine(sys, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    shard::ShardedOptions opt;
    opt.maxSteps = kSteps;
    opt.recordTrace = false;
    opt.seed = 3;
    benchmark::DoNotOptimize(engine.run(opt));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kSteps));
}
BENCHMARK(BM_ShardedEngine256)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Sequential reference point on the same workload.
void BM_SequentialEngine256(benchmark::State& state) {
  const System sys = models::philosophersAtomic(kPhilosophers);
  RandomPolicy policy(3);
  SequentialEngine engine(sys, policy);
  for (auto _ : state) {
    RunOptions opt;
    opt.maxSteps = kSteps;
    opt.recordTrace = false;
    benchmark::DoNotOptimize(engine.run(opt));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kSteps));
}
BENCHMARK(BM_SequentialEngine256)->Unit(benchmark::kMillisecond);

/// Enabled-set-scan throughput over shard-local frames: scans every
/// connector of the 4-shard partition, batched (arg = 1, the zero-gather
/// scanEnabled variant — transition and connector guards run
/// frame-base-relative against the live shard frame in one
/// ExprProgram::runBatch pass) vs scalar (arg = 0). items/s = connector
/// scans per second.
void BM_ShardedScan256(benchmark::State& state) {
  const System sys = models::philosophersAtomic(kPhilosophers);
  shard::ShardedSystem ss(
      sys, shard::partitionSystem(sys, shard::PartitionOptions{4, 1.125, {}}));
  const bool saved = batchScanEnabled();
  setBatchScanEnabled(state.range(0) != 0);
  ss.ensureCompiled();
  const shard::ShardedState st = ss.initialState();
  std::vector<EnabledInteraction> out;
  for (auto _ : state) {
    out.clear();
    for (std::size_t ci = 0; ci < sys.connectorCount(); ++ci) {
      ss.appendConnectorInteractions(st, static_cast<int>(ci), out);
    }
    benchmark::DoNotOptimize(out.size());
  }
  setBatchScanEnabled(saved);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(sys.connectorCount()));
}
BENCHMARK(BM_ShardedScan256)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_Partition256(benchmark::State& state) {
  const System sys = models::philosophersAtomic(kPhilosophers);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        shard::partitionSystem(sys, shard::PartitionOptions{4, 1.125, {}}));
  }
}
BENCHMARK(BM_Partition256)->Unit(benchmark::kMillisecond);

/// Skewed-load scaling point: range(0) components (half of them pairs,
/// 1/64 of the pairs hot, the cold ones dead on arrival so the skew is
/// present from step 0), range(1) = adaptive scheduling on/off. The
/// engine persists across iterations, so in the adaptive arm the first
/// iterations pay the migrations and the remainder measure the
/// rebalanced steady state — exactly the online-rebalancing claim.
void BM_ShardedSkewed(benchmark::State& state) {
  const int pairs = static_cast<int>(state.range(0)) / 2;
  const bool adaptive = state.range(1) != 0;
  const std::uint64_t steps = static_cast<std::uint64_t>(state.range(0)) / 4;
  const System sys = models::skewedPairs(pairs, std::max(1, pairs / 64), 0);
  shard::ShardedEngine engine(sys, 8);
  for (auto _ : state) {
    shard::ShardedOptions opt;
    opt.maxSteps = steps;
    opt.recordTrace = false;
    opt.seed = 3;
    opt.epochBatch = 64;
    opt.rebalance = adaptive;
    opt.workStealing = adaptive;
    opt.rebalanceInterval = 4;
    benchmark::DoNotOptimize(engine.run(opt));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_ShardedSkewed)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// Custom main (instead of BENCHMARK_MAIN) so the 10^6-component scaling
// point only registers when explicitly requested: model construction and
// partitioning alone take long enough that the CI smoke run must not pay
// for them.
int main(int argc, char** argv) {
  if (std::getenv("CBIP_BENCH_LARGE") != nullptr) {
    benchmark::RegisterBenchmark("BM_ShardedSkewed", BM_ShardedSkewed)
        ->Args({1000000, 0})
        ->Args({1000000, 1})
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
