// Sharded vs multithreaded engine throughput at 256 components.
//
// The multithreaded engine pays one offer/execute message round through
// per-component worker threads for every interaction; the sharded engine
// pays three barriers per epoch of up to shards * epochBatch interactions
// and runs everything shard-local lock-free on per-shard frames. The
// acceptance shape for the shard subsystem is >= 1.5x engine-step
// throughput over MtEngine at 256 components / 4 shards (Release).
//
// BM_Partition256 tracks the partitioner itself (greedy graph growing on
// the 256-node philosophers ring).
#include <benchmark/benchmark.h>

#include "engine/engine.hpp"
#include "engine/engine_mt.hpp"
#include "models/models.hpp"
#include "shard/engine_sharded.hpp"

namespace {

using namespace cbip;

constexpr int kPhilosophers = 128;  // 128 philosophers + 128 forks = 256 components
constexpr std::uint64_t kSteps = 500;

void BM_MtEngine256(benchmark::State& state) {
  const System sys = models::philosophersAtomic(kPhilosophers);
  RandomPolicy policy(3);
  MultiThreadEngine engine(sys, policy);
  for (auto _ : state) {
    MtOptions opt;
    opt.maxSteps = kSteps;
    opt.recordTrace = false;
    benchmark::DoNotOptimize(engine.run(opt));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kSteps));
}
BENCHMARK(BM_MtEngine256)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ShardedEngine256(benchmark::State& state) {
  const System sys = models::philosophersAtomic(kPhilosophers);
  shard::ShardedEngine engine(sys, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    shard::ShardedOptions opt;
    opt.maxSteps = kSteps;
    opt.recordTrace = false;
    opt.seed = 3;
    benchmark::DoNotOptimize(engine.run(opt));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kSteps));
}
BENCHMARK(BM_ShardedEngine256)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Sequential reference point on the same workload.
void BM_SequentialEngine256(benchmark::State& state) {
  const System sys = models::philosophersAtomic(kPhilosophers);
  RandomPolicy policy(3);
  SequentialEngine engine(sys, policy);
  for (auto _ : state) {
    RunOptions opt;
    opt.maxSteps = kSteps;
    opt.recordTrace = false;
    benchmark::DoNotOptimize(engine.run(opt));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kSteps));
}
BENCHMARK(BM_SequentialEngine256)->Unit(benchmark::kMillisecond);

/// Enabled-set-scan throughput over shard-local frames: scans every
/// connector of the 4-shard partition, batched (arg = 1, the zero-gather
/// scanEnabled variant — transition and connector guards run
/// frame-base-relative against the live shard frame in one
/// ExprProgram::runBatch pass) vs scalar (arg = 0). items/s = connector
/// scans per second.
void BM_ShardedScan256(benchmark::State& state) {
  const System sys = models::philosophersAtomic(kPhilosophers);
  shard::ShardedSystem ss(
      sys, shard::partitionSystem(sys, shard::PartitionOptions{4, 1.125, {}}));
  const bool saved = batchScanEnabled();
  setBatchScanEnabled(state.range(0) != 0);
  ss.ensureCompiled();
  const shard::ShardedState st = ss.initialState();
  std::vector<EnabledInteraction> out;
  for (auto _ : state) {
    out.clear();
    for (std::size_t ci = 0; ci < sys.connectorCount(); ++ci) {
      ss.appendConnectorInteractions(st, static_cast<int>(ci), out);
    }
    benchmark::DoNotOptimize(out.size());
  }
  setBatchScanEnabled(saved);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(sys.connectorCount()));
}
BENCHMARK(BM_ShardedScan256)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_Partition256(benchmark::State& state) {
  const System sys = models::philosophersAtomic(kPhilosophers);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        shard::partitionSystem(sys, shard::PartitionOptions{4, 1.125, {}}));
  }
}
BENCHMARK(BM_Partition256)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
