// E7 — incremental construction + verification ([4], Section 5.6):
// "reusing invariants considerably reduces the verification effort".
//
// Systems are built by adding connectors one at a time. At every step we
// re-check deadlock-freedom either incrementally (keep component
// invariants, keep the traps the new interactions preserve, top up) or
// from scratch. Reported shape: total time over the construction sequence,
// incremental << from-scratch, gap widening with n.
// E7b — incremental enabled-interaction maintenance in the engine: the
// dirty-set cache re-derives only connectors touching components changed
// by the last interaction (via System::connectorsOf) instead of rescanning
// every connector per step. Shape: dirty-set beats full rescan, gap
// widening with component count.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "engine/engine.hpp"
#include "models/models.hpp"
#include "verify/incremental.hpp"

namespace {

using namespace cbip;

System componentsOnly(const System& full) {
  System base;
  for (const System::Instance& inst : full.instances()) base.addInstance(inst.name, inst.type);
  return base;
}

void BM_IncrementalBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const System full = models::philosophersAtomic(n);
  for (auto _ : state) {
    verify::IncrementalVerifier verifier(componentsOnly(full));
    verify::IncrementalVerifier::StepResult last;
    for (const Connector& c : full.connectors()) last = verifier.addConnector(c);
    if (last.verdict != verify::DFinderVerdict::kDeadlockFree) {
      state.SkipWithError("not certified");
    }
  }
}
BENCHMARK(BM_IncrementalBuild)->DenseRange(2, 8, 2)->Unit(benchmark::kMillisecond);

void BM_FromScratchBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const System full = models::philosophersAtomic(n);
  for (auto _ : state) {
    // Re-verify the growing system from scratch after every addition.
    System growing = componentsOnly(full);
    verify::DFinderResult last;
    for (const Connector& c : full.connectors()) {
      growing.addConnector(c);
      last = verify::checkDeadlockFreedom(growing);
    }
    if (last.verdict != verify::DFinderVerdict::kDeadlockFree) {
      state.SkipWithError("not certified");
    }
  }
}
BENCHMARK(BM_FromScratchBuild)->DenseRange(2, 8, 2)->Unit(benchmark::kMillisecond);

void runEngine(benchmark::State& state, bool incremental) {
  // philosophersAtomic(n) has 2n components (philosophers + forks), so
  // n >= 64 exercises the >= 100-component regime.
  const System sys = models::philosophersAtomic(static_cast<int>(state.range(0)));
  RandomPolicy policy(13);
  for (auto _ : state) {
    SequentialEngine engine(sys, policy);
    RunOptions opt;
    opt.maxSteps = 1000;
    opt.recordTrace = false;
    opt.incrementalCache = incremental;
    benchmark::DoNotOptimize(engine.run(opt));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.counters["components"] =
      benchmark::Counter(static_cast<double>(sys.instanceCount()));
}

void BM_EngineFullRescan(benchmark::State& state) { runEngine(state, false); }
BENCHMARK(BM_EngineFullRescan)->Arg(16)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_EngineDirtySetCache(benchmark::State& state) { runEngine(state, true); }
BENCHMARK(BM_EngineDirtySetCache)->Arg(16)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void printReuseTable() {
  std::printf("\n== E7: invariant reuse during incremental construction ==\n");
  std::printf("%4s %10s %10s %10s\n", "n", "kept", "dropped", "new");
  for (int n = 2; n <= 8; n += 2) {
    const System full = models::philosophersAtomic(n);
    verify::IncrementalVerifier verifier(componentsOnly(full));
    std::size_t kept = 0, dropped = 0, fresh = 0;
    for (const Connector& c : full.connectors()) {
      const auto step = verifier.addConnector(c);
      kept += step.trapsKept;
      dropped += step.trapsDropped;
      fresh += step.trapsNew;
    }
    std::printf("%4d %10zu %10zu %10zu\n", n, kept, dropped, fresh);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printReuseTable();
  return 0;
}
