// E1 / E2 — language embedding (Fig 5.2): the Lustre integrator runs in
// BIP with exactly the reference stream semantics, and the generated model
// size is linear in the source program size ("their size is linear with
// respect to the initial program size", Section 5.6).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "frontends/lustre/lustre.hpp"

namespace {

using namespace cbip;

std::string chainProgram(int n) {
  std::string src = "node chain(x: int) returns (y" + std::to_string(n) + ": int);\n";
  if (n > 1) {
    src += "var ";
    for (int i = 1; i < n; ++i) {
      src += "y" + std::to_string(i) + (i + 1 < n ? ", " : ": int;\n");
    }
  }
  src += "let\n";
  for (int i = 1; i <= n; ++i) {
    const std::string prev = i == 1 ? "x" : "y" + std::to_string(i - 1);
    src += "  y" + std::to_string(i) + " = " + prev + " + pre(y" + std::to_string(i) + ");\n";
  }
  src += "tel\n";
  return src;
}

void BM_InterpreterCycles(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const lustre::Program p = lustre::parse(chainProgram(n));
  for (auto _ : state) {
    lustre::Interpreter interp(p.node("chain"));
    for (int t = 0; t < 100; ++t) benchmark::DoNotOptimize(interp.step({{"x", t}}));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_InterpreterCycles)->DenseRange(2, 10, 4);

void BM_EmbeddedCycles(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const lustre::Program p = lustre::parse(chainProgram(n));
  const lustre::Embedding e = lustre::embed(p.node("chain"), {{"x", {0, 1, 0}}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(lustre::runEmbedded(e, 100));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_EmbeddedCycles)->DenseRange(2, 10, 4);

void printLinearityTable() {
  std::printf("\n== E2: embedded model size vs source size (chain of n integrators) ==\n");
  std::printf("%4s %12s %12s %12s %12s\n", "n", "equations", "components", "connectors",
              "wires");
  for (int n = 1; n <= 16; n *= 2) {
    const lustre::Program p = lustre::parse(chainProgram(n));
    const lustre::Embedding e = lustre::embed(p.node("chain"), {{"x", {0, 1, 0}}});
    std::printf("%4d %12d %12zu %12zu %12d\n", n, n, e.system.instanceCount(),
                e.system.connectorCount(), e.wires);
  }
  std::printf("(components = 2n+2, wires = 3n+1: linear, matching Section 5.6)\n");

  std::printf("\n== E1: Fig 5.2 integrator, embedded vs reference semantics ==\n");
  const lustre::Program p = lustre::parse(
      "node integrator(x: int) returns (y: int); let y = x + pre(y); tel");
  const lustre::NodeDecl& node = p.node("integrator");
  const lustre::Embedding e = lustre::embed(node, {{"x", {0, 1, 0}}});
  const auto streams = lustre::runEmbedded(e, 8);
  lustre::Interpreter interp(node);
  std::printf("%6s %10s %10s\n", "cycle", "BIP y", "ref y");
  for (int t = 0; t < 8; ++t) {
    const auto ref = interp.step({{"x", t}});
    std::printf("%6d %10lld %10lld\n", t,
                static_cast<long long>(streams.at("y")[static_cast<std::size_t>(t)]),
                static_cast<long long>(ref.at("y")));
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printLinearityTable();
  return 0;
}
