// E9 / E5 — the distributed S/R-BIP runtime ([7], Fig 5.4):
//   * parallelism vs interaction partition (1 block .. 1 per connector);
//   * conflict-resolution protocol comparison (centralized / token ring /
//     dining-philosophers forks): virtual makespan + message counts;
//   * the naive per-interaction refinement deadlocks on conflict cycles
//     while the 3-layer runtime does not (Fig 5.4 bottom).
//
// All numbers are simulator quantities (virtual time, delivered messages)
// — deterministic and hardware-independent; wall-clock timings below
// measure the simulator itself.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "distributed/srbip.hpp"
#include "models/models.hpp"

namespace {

using namespace cbip;
using dist::CrpKind;

void BM_DistributedPhilosophers(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto crp = static_cast<CrpKind>(state.range(1));
  const System sys = models::philosophersAtomic(n);
  for (auto _ : state) {
    dist::DistributedOptions opt;
    opt.crp = crp;
    opt.commitTarget = 100;
    const auto r = dist::runDistributed(sys, dist::blockPerConnector(sys), opt);
    if (!r.reachedTarget) state.SkipWithError("target not reached");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DistributedPhilosophers)
    ->ArgsProduct({{4, 8}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

const char* crpName(CrpKind k) {
  switch (k) {
    case CrpKind::kCentralized: return "centralized";
    case CrpKind::kTokenRing: return "token-ring";
    case CrpKind::kPhilosophers: return "philosophers";
  }
  return "?";
}

void printCrpTable() {
  std::printf("\n== E9a: conflict-resolution protocols (philosophers n=6, 200 commits, "
              "block per connector) ==\n");
  std::printf("%14s %12s %12s %12s %10s\n", "CRP", "virt.time", "messages", "coord.msgs",
              "replay ok");
  const System sys = models::philosophersAtomic(6);
  for (const CrpKind crp :
       {CrpKind::kCentralized, CrpKind::kTokenRing, CrpKind::kPhilosophers}) {
    dist::DistributedOptions opt;
    opt.crp = crp;
    opt.commitTarget = 200;
    opt.seed = 11;
    const auto r = dist::runDistributed(sys, dist::blockPerConnector(sys), opt);
    std::printf("%14s %12lld %12llu %12llu %10s\n", crpName(crp),
                static_cast<long long>(r.virtualTime),
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.coordinationMessages),
                dist::replayAgainstReference(sys, r.commits) ? "yes" : "NO");
  }
}

void printPartitionTable() {
  std::printf("\n== E9b: parallelism vs interaction partition (philosophers n=8, "
              "centralized CRP, 200 commits) ==\n");
  std::printf("%10s %12s %12s %12s\n", "blocks", "virt.time", "messages", "coord.msgs");
  const System sys = models::philosophersAtomic(8);
  for (const int k : {1, 2, 4, 8, 16}) {
    dist::DistributedOptions opt;
    opt.commitTarget = 200;
    opt.seed = 11;
    const auto partition = dist::roundRobinBlocks(sys, k);
    const auto r = dist::runDistributed(sys, partition, opt);
    std::printf("%10zu %12lld %12llu %12llu\n", partition.size(),
                static_cast<long long>(r.virtualTime),
                static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.coordinationMessages));
  }
}

void printNaiveTable() {
  std::printf("\n== E5: naive per-interaction refinement vs 3-layer runtime "
              "(conflict triangle, Fig 5.4) ==\n");
  const System sys = dist::conflictTriangle();
  dist::DistributedOptions opt;
  opt.commitTarget = 50;
  const auto naive = dist::runNaiveRefinement(sys, opt);
  std::printf("%-22s commits=%-4zu deadlocked=%s\n", "naive refinement:",
              naive.commits.size(), naive.deadlocked ? "YES" : "no");
  const auto layered = dist::runDistributed(sys, dist::blockPerConnector(sys), opt);
  std::printf("%-22s commits=%-4zu deadlocked=%s\n", "3-layer S/R-BIP:",
              layered.commits.size(), layered.deadlocked ? "YES" : "no");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printCrpTable();
  printPartitionTable();
  printNaiveTable();
  return 0;
}
