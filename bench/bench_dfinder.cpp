// E6 — "D-Finder can run exponentially faster than existing monolithic
// verification tools, such as NuSMV" (monograph Section 5.6).
//
// Reproduction: deadlock-freedom of the dining-philosophers family
// (D-Finder's own benchmark) checked two ways:
//   * compositional: component invariants + interaction invariants + SAT
//     (polynomial in n — never builds the product);
//   * monolithic: exhaustive BFS over the global state space
//     (the reachable control states grow exponentially: Lucas numbers).
// The shape to observe: monolithic time/states explode with n while the
// compositional check stays flat. Gas station gives a second family.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "expr/compile.hpp"
#include "models/models.hpp"
#include "verify/dfinder.hpp"
#include "verify/incremental.hpp"
#include "verify/parallel.hpp"
#include "verify/reachability.hpp"

namespace {

using namespace cbip;

void BM_DFinderPhilosophers(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const System sys = models::philosophersAtomic(n);
  for (auto _ : state) {
    const auto r = verify::checkDeadlockFreedom(sys);
    if (r.verdict != verify::DFinderVerdict::kDeadlockFree) state.SkipWithError("not certified");
    benchmark::DoNotOptimize(r);
  }
  // items/s = certifications per second, the verification-throughput
  // counter the bench-regression gate tracks (ROADMAP verification item).
  state.SetItemsProcessed(state.iterations());
  state.counters["boolVars"] = static_cast<double>(
      verify::checkDeadlockFreedom(sys).booleanVariables);
}
BENCHMARK(BM_DFinderPhilosophers)->DenseRange(2, 12, 2)->Unit(benchmark::kMillisecond);

void BM_MonolithicPhilosophers(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const System sys = models::philosophersAtomic(n, /*counters=*/false);
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto r = verify::explore(sys);
    if (!r.deadlocks.empty()) state.SkipWithError("unexpected deadlock");
    states = r.states;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_MonolithicPhilosophers)->DenseRange(2, 12, 2)->Unit(benchmark::kMillisecond);

/// The compositional check with the abstract-interpretation feed
/// (strengthenWithAnalysis, applied by checkDeadlockFreedom while
/// analysis is enabled) on (arg 1) vs off (arg 0). This family's guards
/// are control-based, so the feed prunes nothing here — the point tracks
/// that computing typeIntervals per distinct type stays a negligible
/// fraction of the SAT pipeline.
void BM_DFinderPhilosophersAnalyzedVsUnanalyzed(benchmark::State& state) {
  const System sys = models::philosophersAtomic(8);
  const bool saved = expr::analysisEnabled();
  expr::setAnalysisEnabled(state.range(0) != 0);
  for (auto _ : state) {
    const auto r = verify::checkDeadlockFreedom(sys);
    if (r.verdict != verify::DFinderVerdict::kDeadlockFree) state.SkipWithError("not certified");
    benchmark::DoNotOptimize(r);
  }
  expr::setAnalysisEnabled(saved);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DFinderPhilosophersAnalyzedVsUnanalyzed)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_DFinderGasStation(benchmark::State& state) {
  const int customers = static_cast<int>(state.range(0));
  const System sys = models::gasStation(2, customers);
  for (auto _ : state) {
    const auto r = verify::checkDeadlockFreedom(sys);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DFinderGasStation)->DenseRange(2, 6, 2)->Unit(benchmark::kMillisecond);

void BM_MonolithicGasStation(benchmark::State& state) {
  const int customers = static_cast<int>(state.range(0));
  const System sys = models::gasStation(2, customers, /*counters=*/false);
  for (auto _ : state) {
    const auto r = verify::explore(sys);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MonolithicGasStation)->DenseRange(2, 4, 1)->Unit(benchmark::kMillisecond);

/// PR-10 tentpole A/B: full certification of a 256-component model.
/// Arg 0 = the historical baseline — legacy pipeline with the
/// compilation and parallel-verify hatches off (tree-walking invariants,
/// fresh SAT encoding per round, one witness per round, serial);
/// arg 1 = the default fast pipeline (compiled invariant evaluation, one
/// incremental solver across rounds, template-copied trap queries, the
/// invariant portfolio threaded). Real time, because arm 1 may spread
/// across a worker pool.
void runPipelineVsLegacy(benchmark::State& state, const System& sys) {
  const bool fast = state.range(0) != 0;
  const bool savedCompile = expr::compilationEnabled();
  const bool savedParallel = verify::parallelVerifyEnabled();
  verify::DFinderOptions opt;
  if (!fast) {
    opt.legacyPipeline = true;
    expr::setCompilationEnabled(false);
    verify::setParallelVerifyEnabled(false);
  }
  for (auto _ : state) {
    const auto r = verify::checkDeadlockFreedom(sys, opt);
    if (r.verdict != verify::DFinderVerdict::kDeadlockFree) state.SkipWithError("not certified");
    benchmark::DoNotOptimize(r);
  }
  expr::setCompilationEnabled(savedCompile);
  verify::setParallelVerifyEnabled(savedParallel);
  state.SetItemsProcessed(state.iterations());
  state.counters["components"] = static_cast<double>(sys.instanceCount());
}

void BM_DFinderPhilosophers256PipelineVsLegacy(benchmark::State& state) {
  runPipelineVsLegacy(state, models::philosophersAtomic(128));  // 256 instances
}
BENCHMARK(BM_DFinderPhilosophers256PipelineVsLegacy)
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_DFinderTokenRing256PipelineVsLegacy(benchmark::State& state) {
  runPipelineVsLegacy(state, models::tokenRing(256));
}
BENCHMARK(BM_DFinderTokenRing256PipelineVsLegacy)
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Compiled invariant evaluation (fused guard+action bytecode in the BFS
/// inner loop, arg 1) vs the shared_ptr expression-tree walk (arg 0) on
/// a data-heavy family where invariant computation dominates the check.
/// Serial both sides: this isolates the bytecode win.
void BM_DFinderInvariantCompiledVsTree(benchmark::State& state) {
  const System sys = models::skewedPairs(64, 8, 1000);
  const bool savedCompile = expr::compilationEnabled();
  const bool savedParallel = verify::parallelVerifyEnabled();
  expr::setCompilationEnabled(state.range(0) != 0);
  verify::setParallelVerifyEnabled(false);
  for (auto _ : state) {
    const auto invs = verify::componentInvariants(sys);
    benchmark::DoNotOptimize(invs);
  }
  expr::setCompilationEnabled(savedCompile);
  verify::setParallelVerifyEnabled(savedParallel);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DFinderInvariantCompiledVsTree)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// The parallel refinement portfolio (arg 1) vs the same fast pipeline
/// forced serial (arg 0). Everything else — solver, batching, compiled
/// invariants — is identical, and so are the verdict, witness and trap
/// sequence (PipelineEquivalence.ParallelAndSerialBitIdentical).
void BM_DFinderParallelVsSerial(benchmark::State& state) {
  const System sys = models::philosophersAtomic(128);
  const bool saved = verify::parallelVerifyEnabled();
  verify::setParallelVerifyEnabled(state.range(0) != 0);
  for (auto _ : state) {
    const auto r = verify::checkDeadlockFreedom(sys);
    if (r.verdict != verify::DFinderVerdict::kDeadlockFree) state.SkipWithError("not certified");
    benchmark::DoNotOptimize(r);
  }
  verify::setParallelVerifyEnabled(saved);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DFinderParallelVsSerial)
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Incremental recertification (arg 1) vs from-scratch re-verification
/// (arg 0) of the same edit: remove the last connector, re-check, add it
/// back, re-check. The incremental verifier keeps component invariants
/// and every trap the edit preserves; the from-scratch arm redoes both.
void BM_DFinderIncrementalVsFull(benchmark::State& state) {
  const System full = models::philosophersAtomic(32);
  const std::size_t last = full.connectorCount() - 1;
  const Connector edited = full.connectors().back();
  if (state.range(0) != 0) {
    verify::IncrementalVerifier verifier(full);
    for (auto _ : state) {
      const auto removed = verifier.removeConnector(last);
      const auto added = verifier.addConnector(edited);
      if (added.verdict != verify::DFinderVerdict::kDeadlockFree) {
        state.SkipWithError("not certified");
      }
      benchmark::DoNotOptimize(removed);
      benchmark::DoNotOptimize(added);
    }
  } else {
    for (auto _ : state) {
      System sys = full;
      sys.removeConnector(last);
      const auto removed = verify::checkDeadlockFreedom(sys);
      sys.addConnector(edited);
      const auto added = verify::checkDeadlockFreedom(sys);
      if (added.verdict != verify::DFinderVerdict::kDeadlockFree) {
        state.SkipWithError("not certified");
      }
      benchmark::DoNotOptimize(removed);
      benchmark::DoNotOptimize(added);
    }
  }
  state.SetItemsProcessed(state.iterations() * 2);  // two re-certifications per edit pair
}
BENCHMARK(BM_DFinderIncrementalVsFull)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// The headline series, printed as a table (paper shape: the monolithic
/// column explodes exponentially, the compositional column stays flat —
/// "D-Finder can run exponentially faster than ... NuSMV").
void printScalingTable() {
  std::printf("\n== E6: deadlock-freedom, compositional (D-Finder) vs monolithic ==\n");
  std::printf("%4s %12s %12s %14s %12s %16s\n", "n", "mono states", "mono ms",
              "dfinder traps", "dfinder ms", "dfinder verdict");
  for (int n = 2; n <= 20; n += 2) {
    const System counterFree = models::philosophersAtomic(n, false);
    verify::ReachOptions opt;
    opt.maxStates = 3'000'000;
    const auto t0 = std::chrono::steady_clock::now();
    const auto mono = verify::explore(counterFree, opt);
    const auto t1 = std::chrono::steady_clock::now();
    const System sys = models::philosophersAtomic(n);
    const auto t2 = std::chrono::steady_clock::now();
    const auto df = verify::checkDeadlockFreedom(sys);
    const auto t3 = std::chrono::steady_clock::now();
    const double monoMs = std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double dfMs = std::chrono::duration<double, std::milli>(t3 - t2).count();
    std::printf("%4d %12llu %12.2f %14zu %12.2f %16s\n", n,
                static_cast<unsigned long long>(mono.states), monoMs, df.traps.size(), dfMs,
                df.verdict == verify::DFinderVerdict::kDeadlockFree ? "df-free (cert)"
                                                                    : "potential dl");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  // The table writes to stdout, which would corrupt a
  // --benchmark_format=json stream and takes minutes at the larger sizes;
  // run_benches.sh sets CBIP_BENCH_NO_TABLE for its JSON smoke runs.
  if (std::getenv("CBIP_BENCH_NO_TABLE") == nullptr) printScalingTable();
  return 0;
}
