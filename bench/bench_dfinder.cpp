// E6 — "D-Finder can run exponentially faster than existing monolithic
// verification tools, such as NuSMV" (monograph Section 5.6).
//
// Reproduction: deadlock-freedom of the dining-philosophers family
// (D-Finder's own benchmark) checked two ways:
//   * compositional: component invariants + interaction invariants + SAT
//     (polynomial in n — never builds the product);
//   * monolithic: exhaustive BFS over the global state space
//     (the reachable control states grow exponentially: Lucas numbers).
// The shape to observe: monolithic time/states explode with n while the
// compositional check stays flat. Gas station gives a second family.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "expr/compile.hpp"
#include "models/models.hpp"
#include "verify/dfinder.hpp"
#include "verify/reachability.hpp"

namespace {

using namespace cbip;

void BM_DFinderPhilosophers(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const System sys = models::philosophersAtomic(n);
  for (auto _ : state) {
    const auto r = verify::checkDeadlockFreedom(sys);
    if (r.verdict != verify::DFinderVerdict::kDeadlockFree) state.SkipWithError("not certified");
    benchmark::DoNotOptimize(r);
  }
  // items/s = certifications per second, the verification-throughput
  // counter the bench-regression gate tracks (ROADMAP verification item).
  state.SetItemsProcessed(state.iterations());
  state.counters["boolVars"] = static_cast<double>(
      verify::checkDeadlockFreedom(sys).booleanVariables);
}
BENCHMARK(BM_DFinderPhilosophers)->DenseRange(2, 12, 2)->Unit(benchmark::kMillisecond);

void BM_MonolithicPhilosophers(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const System sys = models::philosophersAtomic(n, /*counters=*/false);
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto r = verify::explore(sys);
    if (!r.deadlocks.empty()) state.SkipWithError("unexpected deadlock");
    states = r.states;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_MonolithicPhilosophers)->DenseRange(2, 12, 2)->Unit(benchmark::kMillisecond);

/// The compositional check with the abstract-interpretation feed
/// (strengthenWithAnalysis, applied by checkDeadlockFreedom while
/// analysis is enabled) on (arg 1) vs off (arg 0). This family's guards
/// are control-based, so the feed prunes nothing here — the point tracks
/// that computing typeIntervals per distinct type stays a negligible
/// fraction of the SAT pipeline.
void BM_DFinderPhilosophersAnalyzedVsUnanalyzed(benchmark::State& state) {
  const System sys = models::philosophersAtomic(8);
  const bool saved = expr::analysisEnabled();
  expr::setAnalysisEnabled(state.range(0) != 0);
  for (auto _ : state) {
    const auto r = verify::checkDeadlockFreedom(sys);
    if (r.verdict != verify::DFinderVerdict::kDeadlockFree) state.SkipWithError("not certified");
    benchmark::DoNotOptimize(r);
  }
  expr::setAnalysisEnabled(saved);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DFinderPhilosophersAnalyzedVsUnanalyzed)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_DFinderGasStation(benchmark::State& state) {
  const int customers = static_cast<int>(state.range(0));
  const System sys = models::gasStation(2, customers);
  for (auto _ : state) {
    const auto r = verify::checkDeadlockFreedom(sys);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DFinderGasStation)->DenseRange(2, 6, 2)->Unit(benchmark::kMillisecond);

void BM_MonolithicGasStation(benchmark::State& state) {
  const int customers = static_cast<int>(state.range(0));
  const System sys = models::gasStation(2, customers, /*counters=*/false);
  for (auto _ : state) {
    const auto r = verify::explore(sys);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MonolithicGasStation)->DenseRange(2, 4, 1)->Unit(benchmark::kMillisecond);

/// The headline series, printed as a table (paper shape: the monolithic
/// column explodes exponentially, the compositional column stays flat —
/// "D-Finder can run exponentially faster than ... NuSMV").
void printScalingTable() {
  std::printf("\n== E6: deadlock-freedom, compositional (D-Finder) vs monolithic ==\n");
  std::printf("%4s %12s %12s %14s %12s %16s\n", "n", "mono states", "mono ms",
              "dfinder traps", "dfinder ms", "dfinder verdict");
  for (int n = 2; n <= 20; n += 2) {
    const System counterFree = models::philosophersAtomic(n, false);
    verify::ReachOptions opt;
    opt.maxStates = 3'000'000;
    const auto t0 = std::chrono::steady_clock::now();
    const auto mono = verify::explore(counterFree, opt);
    const auto t1 = std::chrono::steady_clock::now();
    const System sys = models::philosophersAtomic(n);
    const auto t2 = std::chrono::steady_clock::now();
    const auto df = verify::checkDeadlockFreedom(sys);
    const auto t3 = std::chrono::steady_clock::now();
    const double monoMs = std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double dfMs = std::chrono::duration<double, std::milli>(t3 - t2).count();
    std::printf("%4d %12llu %12.2f %14zu %12.2f %16s\n", n,
                static_cast<unsigned long long>(mono.states), monoMs, df.traps.size(), dfMs,
                df.verdict == verify::DFinderVerdict::kDeadlockFree ? "df-free (cert)"
                                                                    : "potential dl");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  // The table writes to stdout, which would corrupt a
  // --benchmark_format=json stream and takes minutes at the larger sizes;
  // run_benches.sh sets CBIP_BENCH_NO_TABLE for its JSON smoke runs.
  if (std::getenv("CBIP_BENCH_NO_TABLE") == nullptr) printScalingTable();
  return 0;
}
