// E8 — glue expressiveness ([5], Section 5.3.2): interactions + priorities
// realize broadcast natively; interactions alone need extra behaviour.
//
// Measured gap between broadcastWithPriorities(n) and
// broadcastRendezvousOnly(n): auxiliary components, connectors, reachable
// states, engine steps per broadcast round, and raw engine throughput.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/expressiveness.hpp"
#include "engine/engine.hpp"
#include "verify/reachability.hpp"

namespace {

using namespace cbip;

void BM_BroadcastWithPriorities(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const BroadcastModel m = broadcastWithPriorities(n);
  RandomPolicy policy(7);
  for (auto _ : state) {
    SequentialEngine engine(m.system, policy);
    RunOptions opt;
    opt.maxSteps = 1000;
    opt.recordTrace = false;
    benchmark::DoNotOptimize(engine.run(opt));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_BroadcastWithPriorities)->DenseRange(2, 8, 2);

void BM_BroadcastRendezvousOnly(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const BroadcastModel m = broadcastRendezvousOnly(n);
  RandomPolicy policy(7);
  for (auto _ : state) {
    SequentialEngine engine(m.system, policy);
    RunOptions opt;
    opt.maxSteps = 1000;
    opt.recordTrace = false;
    benchmark::DoNotOptimize(engine.run(opt));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_BroadcastRendezvousOnly)->DenseRange(2, 8, 2);

void printGapTable() {
  std::printf("\n== E8: broadcast via priorities vs rendezvous-only emulation ==\n");
  std::printf("%3s | %10s %10s %10s %10s | %10s %10s %10s %10s\n", "n", "prio:comp",
              "conn", "states", "steps/rd", "rv:comp", "conn", "states", "steps/rd");
  for (int n = 2; n <= 6; ++n) {
    const BroadcastModel p = broadcastWithPriorities(n, /*counters=*/false);
    const BroadcastModel r = broadcastRendezvousOnly(n, /*counters=*/false);
    const auto sp = verify::explore(p.system);
    const auto sr = verify::explore(r.system);
    std::printf("%3d | %10zu %10zu %10llu %10d | %10zu %10zu %10llu %10d\n", n,
                p.system.instanceCount(), p.system.connectorCount(),
                static_cast<unsigned long long>(sp.states), p.stepsPerRound,
                r.system.instanceCount(), r.system.connectorCount(),
                static_cast<unsigned long long>(sr.states), r.stepsPerRound);
  }
  std::printf("(prio: zero auxiliary components; rv-only: +1 arbiter, 2n+... connectors,\n"
              " n+1 steps per broadcast round — the price of interactions-only glue)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printGapTable();
  return 0;
}
