#!/usr/bin/env python3
"""Bench-regression gate: compare a fresh BENCH_engine.json against the
committed baseline and fail on large throughput regressions.

Usage: bench/compare_benches.py BASELINE_JSON NEW_JSON [--max-regression PCT]

Both files are the merged format emitted by bench/run_benches.sh
({"bench_engine": {...}, "bench_sharded": {...}, "bench_expr": {...},
"bench_dfinder": {...}}). Two tiers of checks:

* Ratio gates (always enforced): same-run A/B ratios — the batched scan
  over the scalar scan, the compiled engine over the interpreted one.
  Both sides of each ratio come from one process on one machine, so the
  comparison is meaningful even when the committed baseline was recorded
  on different hardware than the CI runner. A ratio regressing by more
  than the threshold vs the baseline's ratio fails the gate.
* Absolute gates (enforced only when the baseline's recorded context —
  host_name and num_cpus — matches the new file's): raw items_per_second
  of the key engine-step counters. On a context mismatch these are
  reported as SKIP, because cross-machine absolute throughput differs by
  far more than any useful threshold.

Key counters missing from either file are reported and skipped (new
benchmarks have no baseline yet), so the gate never blocks adding
benchmarks — only slowing existing ones down. CI smoke runs are noisy
(shared runners, minimal iteration counts), hence the deliberately loose
default threshold of 25%; BENCH_MAX_REGRESSION overrides it.
"""

import argparse
import json
import os
import sys

# Same-run A/B pairs: (suite, numerator benchmark, denominator benchmark).
# Each captures the batched-over-scalar (or compiled-over-interpreted)
# speedup this repo's PRs optimize for, independent of the machine.
KEY_RATIOS = [
    ("bench_engine", "BM_EnabledScan/128/1", "BM_EnabledScan/128/0"),
    ("bench_engine", "BM_EnabledScan/256/1", "BM_EnabledScan/256/0"),
    ("bench_engine", "BM_EnabledScanDataHeavy/256/1", "BM_EnabledScanDataHeavy/256/0"),
    ("bench_sharded", "BM_ShardedScan256/1", "BM_ShardedScan256/0"),
    ("bench_sharded", "BM_ShardedSkewed/4096/1/real_time",
     "BM_ShardedSkewed/4096/0/real_time"),
    ("bench_sharded", "BM_ShardedSkewed/100000/1/real_time",
     "BM_ShardedSkewed/100000/0/real_time"),
    ("bench_engine", "BM_SequentialEngineCompiledVsInterpreted/1",
     "BM_SequentialEngineCompiledVsInterpreted/0"),
    ("bench_engine", "BM_SequentialEngineFusedVsUnfused/1",
     "BM_SequentialEngineFusedVsUnfused/0"),
    ("bench_engine", "BM_SequentialEngineAnalyzedVsUnanalyzed/1",
     "BM_SequentialEngineAnalyzedVsUnanalyzed/0"),
    ("bench_engine", "BM_SequentialEngineThreadedVsSwitch/1",
     "BM_SequentialEngineThreadedVsSwitch/0"),
    ("bench_expr", "BM_DispatchThreadedVsSwitch/1", "BM_DispatchThreadedVsSwitch/0"),
    ("bench_expr", "BM_BatchBlockedVsScalar/1", "BM_BatchBlockedVsScalar/0"),
    ("bench_dfinder", "BM_DFinderPhilosophersAnalyzedVsUnanalyzed/1",
     "BM_DFinderPhilosophersAnalyzedVsUnanalyzed/0"),
    ("bench_dfinder", "BM_DFinderPhilosophers256PipelineVsLegacy/1/real_time",
     "BM_DFinderPhilosophers256PipelineVsLegacy/0/real_time"),
    ("bench_dfinder", "BM_DFinderTokenRing256PipelineVsLegacy/1/real_time",
     "BM_DFinderTokenRing256PipelineVsLegacy/0/real_time"),
    ("bench_dfinder", "BM_DFinderInvariantCompiledVsTree/1",
     "BM_DFinderInvariantCompiledVsTree/0"),
    ("bench_dfinder", "BM_DFinderParallelVsSerial/1/real_time",
     "BM_DFinderParallelVsSerial/0/real_time"),
    ("bench_dfinder", "BM_DFinderIncrementalVsFull/1",
     "BM_DFinderIncrementalVsFull/0"),
]

# Same-run ratios that must additionally clear an absolute floor in the
# NEW results, independent of any baseline: the adaptive scheduler
# (rebalancing + work stealing) must beat the static partition on the
# 10^5-component skewed-load model, or the online-rebalancing claim is
# void no matter what the baseline recorded; and the fast D-Finder
# pipeline (compiled invariants, one incremental solver, template-copied
# trap queries) must certify the 256-component models at >= 3x the
# tree-walking serial legacy pipeline, or the verification-at-engine-
# speed claim is void.
KEY_RATIO_FLOORS = [
    ("bench_sharded", "BM_ShardedSkewed/100000/1/real_time",
     "BM_ShardedSkewed/100000/0/real_time", 1.0),
    ("bench_dfinder", "BM_DFinderPhilosophers256PipelineVsLegacy/1/real_time",
     "BM_DFinderPhilosophers256PipelineVsLegacy/0/real_time", 3.0),
    ("bench_dfinder", "BM_DFinderTokenRing256PipelineVsLegacy/1/real_time",
     "BM_DFinderTokenRing256PipelineVsLegacy/0/real_time", 3.0),
]

# Absolute throughput counters, only comparable on matching context.
KEY_COUNTERS = [
    ("bench_engine", "BM_SequentialEngine/0"),
    ("bench_engine", "BM_EnabledScan/256/1"),
    ("bench_sharded", "BM_SequentialEngine256"),
    ("bench_sharded", "BM_ShardedEngine256/4/real_time"),
    ("bench_sharded", "BM_ShardedSkewed/100000/1/real_time"),
    ("bench_dfinder", "BM_DFinderPhilosophers/8"),
    ("bench_dfinder", "BM_DFinderGasStation/4"),
]


def load(path):
    with open(path) as f:
        merged = json.load(f)
    counters = {}
    context = {}
    obs = {}
    for suite, payload in merged.items():
        ctx = payload.get("context", {})
        context[suite] = (ctx.get("host_name"), ctx.get("num_cpus"))
        obs[suite] = payload.get("obs", {}).get("counters", {})
        for bench in payload.get("benchmarks", []):
            ips = bench.get("items_per_second")
            if ips is not None:
                counters[(suite, bench["name"])] = ips
    return counters, context, obs


def report_obs(base_obs, new_obs):
    """Informational (never gating) report of the telemetry counters each
    suite exported (src/obs, attached by run_benches.sh): execution-path
    mix shifts — batch-scan hit rate dropping, EvalError scalar replays
    appearing — that a pure timing diff cannot attribute."""

    def rate(counters, hits, *alternatives):
        total = counters.get(hits, 0) + sum(counters.get(a, 0) for a in alternatives)
        return (counters.get(hits, 0) / total) if total else None

    derived = [
        ("batch-scan hit rate",
         lambda c: rate(c, "scan.batch.calls", "scan.scalar.calls",
                        "scan.interp.calls")),
        ("sharded batch-scan hit rate",
         lambda c: rate(c, "shard.scan.batch.calls", "shard.scan.scalar.calls")),
        ("tryfire hit rate",
         lambda c: (c.get("vm.tryfire.hits", 0) / c["vm.tryfire.calls"]
                    if c.get("vm.tryfire.calls") else None)),
        ("block replays", lambda c: c.get("vm.batch.replays")),
        ("block lanes/block",
         lambda c: (c["vm.batch.block_lanes"] / c["vm.batch.blocks"]
                    if c.get("vm.batch.blocks") else None)),
        ("cross-shard conflicts",
         lambda c: c.get("engine.sharded.cross.conflicts")),
        ("stalled epochs", lambda c: c.get("engine.sharded.epochs.stalled")),
    ]
    printed_header = False
    for suite in sorted(set(base_obs) | set(new_obs)):
        b, n = base_obs.get(suite, {}), new_obs.get(suite, {})
        if not b and not n:
            continue
        lines = []
        for label, fn in derived:
            bv, nv = fn(b), fn(n)
            if bv is None and nv is None:
                continue
            fmt = lambda v: "n/a" if v is None else (
                f"{v:.1%}" if isinstance(v, float) and "rate" in label else f"{v:g}")
            lines.append(f"  {suite}: {label}  {fmt(bv)} -> {fmt(nv)}")
        if lines and not printed_header:
            print("\nobs counter deltas (informational, never gating):")
            printed_header = True
        for line in lines:
            print(line)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=float(os.environ.get("BENCH_MAX_REGRESSION", "25")),
        help="maximum tolerated throughput drop, in percent (default 25)",
    )
    args = parser.parse_args()

    base, baseCtx, baseObs = load(args.baseline)
    new, newCtx, newObs = load(args.new)
    floor = 1.0 - args.max_regression / 100.0
    failures = []

    def check(label, baseValue, newValue):
        # A zero baseline counter (seen on pathological smoke runs where a
        # benchmark records no items) makes every ratio meaningless — skip
        # loudly instead of crashing the gate with a ZeroDivisionError.
        if baseValue == 0:
            print(f"SKIP  {label} (baseline counter is zero; not comparable)")
            return
        ratio = newValue / baseValue
        status = "OK  " if ratio >= floor else "FAIL"
        print(f"{status}  {label}  {baseValue:.3g} -> {newValue:.3g}  ({ratio:.2f}x)")
        if ratio < floor:
            failures.append(f"{label} regressed to {ratio:.2f}x of baseline "
                            f"(floor {floor:.2f}x)")

    for suite, num, den in KEY_RATIOS:
        if (suite, num) not in new or (suite, den) not in new:
            failures.append(f"{suite}:{num}/{den} missing from the new results")
            continue
        if (suite, num) not in base or (suite, den) not in base:
            print(f"SKIP  {suite}:{num} over {den} (no baseline)")
            continue
        if base[(suite, den)] == 0 or new[(suite, den)] == 0:
            print(f"SKIP  {suite}:{num} over {den} (zero denominator counter; "
                  f"not comparable)")
            continue
        check(f"{suite}:{num} over {den} [speedup ratio]",
              base[(suite, num)] / base[(suite, den)],
              new[(suite, num)] / new[(suite, den)])

    for suite, num, den, ratioFloor in KEY_RATIO_FLOORS:
        if (suite, num) not in new or (suite, den) not in new:
            continue  # the KEY_RATIOS pass already failed on the absence
        if new[(suite, den)] == 0:
            print(f"SKIP  {suite}:{num} over {den} floor (zero denominator)")
            continue
        ratio = new[(suite, num)] / new[(suite, den)]
        status = "OK  " if ratio > ratioFloor else "FAIL"
        print(f"{status}  {suite}:{num} over {den} [absolute floor "
              f"{ratioFloor:.2f}x]  ({ratio:.2f}x)")
        if ratio <= ratioFloor:
            failures.append(f"{suite}:{num} over {den} at {ratio:.2f}x is below "
                            f"the absolute floor {ratioFloor:.2f}x")

    for suite, name in KEY_COUNTERS:
        if (suite, name) not in base:
            print(f"SKIP  {suite}:{name} (no baseline counter)")
            continue
        if (suite, name) not in new:
            failures.append(f"{suite}:{name} missing from the new results")
            continue
        if baseCtx.get(suite) != newCtx.get(suite):
            print(f"SKIP  {suite}:{name} (baseline context {baseCtx.get(suite)} != "
                  f"{newCtx.get(suite)}; absolute throughput not comparable)")
            continue
        check(f"{suite}:{name} [items/s]", base[(suite, name)], new[(suite, name)])

    report_obs(baseObs, newObs)

    if failures:
        print(f"\nbench-regression gate FAILED ({len(failures)} check(s)):",
              file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbench-regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
