// Interpreted vs compiled evaluation of the data sub-language.
//
// The tree-walking interpreter chases shared_ptr children and resolves
// every variable through a virtual EvalContext; the bytecode evaluator
// walks a dense instruction array against a flat frame. Workloads mirror
// what the engines actually evaluate per step: transition guards
// (comparison/boolean-heavy, read-only) and action blocks (arithmetic
// with sequential writes). Expected shape: compiled wins by >= 2x on
// both, growing with expression size.
#include <benchmark/benchmark.h>

#include <vector>

#include "analyze/analyze.hpp"
#include "expr/compile.hpp"
#include "expr/expr.hpp"

namespace {

using namespace cbip::expr;

Expr v(int i) { return Expr::local(i); }

/// A realistic guard: bounds checks and parity tests over several
/// variables, the shape gas-station/producer-consumer guards take.
Expr guardExpr() {
  return (v(0) < v(1)) && (v(2) % Expr::lit(7) != Expr::lit(0)) &&
         (v(3) + v(4) * Expr::lit(3) <= Expr::lit(500)) &&
         (Expr::min(v(5), v(6)) >= Expr::lit(-100) || v(7) == Expr::lit(1));
}

/// A guard scaled up `n` times (broadcast connectors conjoin per-end
/// conditions, so real guards grow linearly with the end count).
Expr wideGuard(int n) {
  Expr g = Expr::top();
  for (int i = 0; i < n; ++i) {
    g = std::move(g) && (v(i % 8) + Expr::lit(i) < v((i + 3) % 8) * Expr::lit(2) + Expr::lit(400));
  }
  return g;
}

/// An action block: the update arithmetic of a counter-mixing transition.
std::vector<Assign> actionBlock() {
  return {
      Assign{VarRef{0, 0}, (v(0) * Expr::lit(3) + v(1)) % Expr::lit(257)},
      Assign{VarRef{0, 1}, v(1) + Expr::ite(v(0) > v(2), v(0) - v(2), v(2) - v(0))},
      Assign{VarRef{0, 2}, Expr::max(v(2), Expr::abs(v(3) - v(4)))},
      Assign{VarRef{0, 3}, v(3) + Expr::lit(1)},
  };
}

std::vector<Value> makeFrame() { return {5, 40, 13, 7, 21, -3, 9, 1}; }

void BM_GuardInterpreted(benchmark::State& state) {
  const Expr g = state.range(0) == 0 ? guardExpr() : wideGuard(static_cast<int>(state.range(0)));
  std::vector<Value> vars = makeFrame();
  VecContext ctx(vars);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.eval(ctx));
    vars[0] ^= 1;  // defeat value caching across iterations
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuardInterpreted)->Arg(0)->Arg(8)->Arg(32);

void BM_GuardCompiled(benchmark::State& state) {
  const Expr g = state.range(0) == 0 ? guardExpr() : wideGuard(static_cast<int>(state.range(0)));
  const ExprProgram p = compileLocal(g);
  std::vector<Value> vars = makeFrame();
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.run(vars));
    vars[0] ^= 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuardCompiled)->Arg(0)->Arg(8)->Arg(32);

void BM_ActionInterpreted(benchmark::State& state) {
  const std::vector<Assign> actions = actionBlock();
  std::vector<Value> vars = makeFrame();
  VecContext ctx(vars);
  for (auto _ : state) {
    applyAssignments(actions, ctx);
    benchmark::DoNotOptimize(vars.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(actions.size()));
}
BENCHMARK(BM_ActionInterpreted);

void BM_ActionCompiled(benchmark::State& state) {
  struct Compiled {
    int target;
    ExprProgram value;
  };
  std::vector<Compiled> actions;
  for (const Assign& a : actionBlock()) {
    actions.push_back(Compiled{a.target.index, compileLocal(a.value)});
  }
  std::vector<Value> vars = makeFrame();
  for (auto _ : state) {
    for (const Compiled& a : actions) {
      vars[static_cast<std::size_t>(a.target)] = a.value.run(vars);
    }
    benchmark::DoNotOptimize(vars.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(actions.size()));
}
BENCHMARK(BM_ActionCompiled);

/// One transition's guarded command, with the guard's arithmetic shared
/// by the first action — the shape the fused programs exist for.
Expr sharedMix() { return (v(0) * Expr::lit(3) + v(1)) % Expr::lit(257); }
Expr commandGuard() { return sharedMix() != Expr::lit(0) && v(3) + v(4) < Expr::lit(1000); }

const SlotMap& localSlots() {
  static const SlotMap slots = [](VarRef r) { return r.index; };
  return slots;
}

void BM_GuardedCommandUnfused(benchmark::State& state) {
  // The pre-fusion dispatch: one guard program, then one program per
  // action, each with its own run() entry and its own evaluation of the
  // shared subexpression.
  const ExprProgram guard = compileLocal(commandGuard());
  struct Compiled {
    int target;
    ExprProgram value;
  };
  std::vector<Compiled> actions;
  std::vector<Assign> block = actionBlock();
  block[0].value = sharedMix();  // action 0 recomputes the guard's arithmetic
  for (const Assign& a : block) {
    actions.push_back(Compiled{a.target.index, compileLocal(a.value)});
  }
  std::vector<Value> vars = makeFrame();
  for (auto _ : state) {
    if (guard.run(vars) != 0) {
      for (const Compiled& a : actions) {
        vars[static_cast<std::size_t>(a.target)] = a.value.run(vars);
      }
    }
    vars[0] = (vars[0] ^ 1) & 0xff;
    benchmark::DoNotOptimize(vars.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuardedCommandUnfused);

void BM_GuardedCommandFused(benchmark::State& state) {
  // The same guarded command as one fused program: a single dispatch,
  // conditional skip over the action suffix, shared arithmetic computed
  // once (kTee / kLoadTmp across the guard/action boundary).
  std::vector<Assign> block = actionBlock();
  block[0].value = sharedMix();
  const ExprProgram fused = compileFused(commandGuard(), block, localSlots());
  std::vector<Value> vars = makeFrame();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fused.run(std::span<Value>(vars), 0));
    vars[0] = (vars[0] ^ 1) & 0xff;
    benchmark::DoNotOptimize(vars.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuardedCommandFused);

/// A division-heavy expression whose divisors are all non-zero literals —
/// the shape the abstract interpreter proves safe. Arg 1 runs the program
/// after relaxSafeDivChecks rewrote every site to its unchecked opcode
/// (no zero/overflow branches); arg 0 is the checked baseline.
void BM_DivisionCheckedVsRelaxed(benchmark::State& state) {
  const Expr e = (v(0) / Expr::lit(7) + v(1) % Expr::lit(13)) * Expr::lit(3) +
                 (v(2) / Expr::lit(5)) % Expr::lit(11) - v(3) / Expr::lit(2) +
                 (v(4) % Expr::lit(17)) * (v(5) / Expr::lit(3));
  ExprProgram p = compileLocal(e);
  if (state.range(0) != 0) {
    const std::vector<cbip::analyze::Interval> env(8, cbip::analyze::Interval::top());
    cbip::analyze::relaxSafeDivChecks(p, env);
  }
  std::vector<Value> vars = makeFrame();
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.run(vars));
    vars[0] ^= 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DivisionCheckedVsRelaxed)->Arg(0)->Arg(1);

/// The two VM dispatch cores on identical bytecode: arg 0 runs the
/// portable switch interpreter, arg 1 the computed-goto direct-threaded
/// core (on toolchains without computed goto both args measure the
/// switch). The workload interleaves a guard and a fused guarded command
/// — the two program shapes the engines dispatch per step. KEY_RATIO in
/// compare_benches.py; the ISSUE-7 target is >= 1.15x threaded/switch.
void BM_DispatchThreadedVsSwitch(benchmark::State& state) {
  const bool saved = threadedDispatchEnabled();
  setThreadedDispatchEnabled(state.range(0) != 0);
  const ExprProgram guard = compileLocal(guardExpr());
  const ExprProgram wide = compileLocal(wideGuard(16));
  std::vector<Assign> block = actionBlock();
  block[0].value = sharedMix();
  const ExprProgram fused = compileFused(commandGuard(), block, localSlots());
  std::vector<Value> vars = makeFrame();
  for (auto _ : state) {
    benchmark::DoNotOptimize(guard.run(std::span<const Value>(vars), 0));
    benchmark::DoNotOptimize(wide.run(std::span<const Value>(vars), 0));
    benchmark::DoNotOptimize(fused.run(std::span<Value>(vars), 0));
    vars[0] = (vars[0] ^ 1) & 0xff;
  }
  state.SetItemsProcessed(state.iterations() * 3);
  setThreadedDispatchEnabled(saved);
}
BENCHMARK(BM_DispatchThreadedVsSwitch)->Arg(0)->Arg(1);

/// runBatch over a long run of one guard program at many frame bases —
/// the scanEnabled shape for wide same-typed connectors. Arg 0 evaluates
/// op-by-op on the switch core (CBIP_NO_THREADED semantics); arg 1 takes
/// the accelerated path, where the run executes through the strip-mined
/// block executor on the jump-free batch form.
void BM_BatchBlockedVsScalar(benchmark::State& state) {
  const bool saved = threadedDispatchEnabled();
  setThreadedDispatchEnabled(state.range(0) != 0);
  const ExprProgram guard = compileLocal(guardExpr());
  constexpr int kBases = 64;
  std::vector<Value> frame(8 * kBases);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    frame[i] = makeFrame()[i % 8] + static_cast<Value>(i / 8);
  }
  std::vector<BatchOp> ops;
  for (int b = 0; b < kBases; ++b) ops.push_back(BatchOp{&guard, b * 8});
  std::vector<Value> out(ops.size());
  for (auto _ : state) {
    ExprProgram::runBatch(ops, frame, out);
    benchmark::DoNotOptimize(out.data());
    frame[0] ^= 1;
  }
  state.SetItemsProcessed(state.iterations() * kBases);
  setThreadedDispatchEnabled(saved);
}
BENCHMARK(BM_BatchBlockedVsScalar)->Arg(0)->Arg(1);

void BM_CompileOnce(benchmark::State& state) {
  // The one-time lowering cost amortized away by the per-step savings.
  const Expr g = wideGuard(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compileLocal(g));
  }
}
BENCHMARK(BM_CompileOnce);

}  // namespace

BENCHMARK_MAIN();
