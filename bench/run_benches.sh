#!/usr/bin/env bash
# Runs the benchmark suites and emits a single BENCH_engine.json.
#
# Usage: bench/run_benches.sh [BUILD_DIR] [OUTPUT_JSON]
#   BUILD_DIR    CMake build tree containing the bench_* executables
#                (default: build; configure with the default Release type
#                and google-benchmark installed so the targets exist).
#   OUTPUT_JSON  merged output file (default: BENCH_engine.json).
#
# BENCH_ARGS overrides the per-binary benchmark flags; CI uses a minimal
# --benchmark_min_time so the smoke run stays fast. Note: benchmark 1.7.x
# (Ubuntu's libbenchmark-dev) wants a bare double for min_time, no "s"
# suffix.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_engine.json}"
: "${BENCH_ARGS:=--benchmark_min_time=0.05}"

# The merged file keys each suite's google-benchmark JSON by binary name;
# compare_benches.py gates ratios/counters across all of them (engine and
# scan throughput, VM dispatch, sharded scaling, D-Finder verification).
SUITES=(bench_engine bench_sharded bench_expr bench_dfinder)

for bench in "${SUITES[@]}"; do
  if [[ ! -x "$BUILD_DIR/$bench" ]]; then
    echo "error: $BUILD_DIR/$bench not found or not executable" >&2
    echo "       (configure with google-benchmark installed: the bench_*" >&2
    echo "        targets are skipped when the package is absent)" >&2
    exit 1
  fi
done

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# bench_dfinder's scaling table prints to stdout (it would corrupt the
# JSON stream) and takes minutes; suppress it for the merged run.
export CBIP_BENCH_NO_TABLE=1

for bench in "${SUITES[@]}"; do
  echo "== $bench $BENCH_ARGS" >&2
  # Each suite also dumps its telemetry snapshot (src/obs) at exit; the
  # merge attaches it under the suite's "obs" key so counter-level deltas
  # (batch-scan hit rate, EvalError replays) ride along with the timings.
  # shellcheck disable=SC2086  # BENCH_ARGS is intentionally word-split
  CBIP_OBS_EXPORT="$tmpdir/$bench.obs.json" \
    "$BUILD_DIR/$bench" --benchmark_format=json $BENCH_ARGS > "$tmpdir/$bench.json"
done

# Merge, stamping provenance (git SHA, dirty flag, CMake build type) into
# every suite's context block so a committed baseline records exactly
# which tree produced it.
GIT_SHA="$(git -C "$(dirname "$0")/.." rev-parse --short HEAD 2>/dev/null || echo unknown)"
if ! git -C "$(dirname "$0")/.." diff --quiet HEAD 2>/dev/null; then
  GIT_SHA="$GIT_SHA-dirty"
fi
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null | head -1)"

SUITES_CSV="$(IFS=,; echo "${SUITES[*]}")" \
TMPDIR_BENCH="$tmpdir" GIT_SHA="$GIT_SHA" BUILD_TYPE="${BUILD_TYPE:-unknown}" \
python3 - "$OUT" <<'PYEOF'
import json, os, sys

out = sys.argv[1]
tmpdir = os.environ["TMPDIR_BENCH"]
merged = {}
for suite in os.environ["SUITES_CSV"].split(","):
    with open(os.path.join(tmpdir, suite + ".json")) as f:
        payload = json.load(f)
    payload.setdefault("context", {})
    payload["context"]["git_sha"] = os.environ["GIT_SHA"]
    payload["context"]["build_type"] = os.environ["BUILD_TYPE"]
    obs_path = os.path.join(tmpdir, suite + ".obs.json")
    if os.path.exists(obs_path):
        with open(obs_path) as f:
            payload["obs"] = json.load(f)
    merged[suite] = payload
with open(out, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
PYEOF

echo "wrote $OUT" >&2
