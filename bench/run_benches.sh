#!/usr/bin/env bash
# Runs the benchmark suites and emits a single BENCH_engine.json.
#
# Usage: bench/run_benches.sh [BUILD_DIR] [OUTPUT_JSON]
#   BUILD_DIR    CMake build tree containing the bench_* executables
#                (default: build; configure with the default Release type
#                and google-benchmark installed so the targets exist).
#   OUTPUT_JSON  merged output file (default: BENCH_engine.json).
#
# BENCH_ARGS overrides the per-binary benchmark flags; CI uses a minimal
# --benchmark_min_time so the smoke run stays fast. Note: benchmark 1.7.x
# (Ubuntu's libbenchmark-dev) wants a bare double for min_time, no "s"
# suffix.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_engine.json}"
: "${BENCH_ARGS:=--benchmark_min_time=0.05}"

# The merged file keys each suite's google-benchmark JSON by binary name;
# compare_benches.py gates ratios/counters across all of them (engine and
# scan throughput, VM dispatch, sharded scaling, D-Finder verification).
SUITES=(bench_engine bench_sharded bench_expr bench_dfinder)

for bench in "${SUITES[@]}"; do
  if [[ ! -x "$BUILD_DIR/$bench" ]]; then
    echo "error: $BUILD_DIR/$bench not found or not executable" >&2
    echo "       (configure with google-benchmark installed: the bench_*" >&2
    echo "        targets are skipped when the package is absent)" >&2
    exit 1
  fi
done

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# bench_dfinder's scaling table prints to stdout (it would corrupt the
# JSON stream) and takes minutes; suppress it for the merged run.
export CBIP_BENCH_NO_TABLE=1

for bench in "${SUITES[@]}"; do
  echo "== $bench $BENCH_ARGS" >&2
  # shellcheck disable=SC2086  # BENCH_ARGS is intentionally word-split
  "$BUILD_DIR/$bench" --benchmark_format=json $BENCH_ARGS > "$tmpdir/$bench.json"
done

{
  printf '{'
  sep=''
  for bench in "${SUITES[@]}"; do
    printf '%s\n"%s":\n' "$sep" "$bench"
    cat "$tmpdir/$bench.json"
    sep=','
  done
  printf '}\n'
} > "$OUT"

echo "wrote $OUT" >&2
