// E12 — static fusion of co-located components (Section 5.6: composing
// the atomic components mapped to one processor "to reduce coordination
// overhead at runtime").
//
// Shape: the fused single component executes the same labelled behaviour
// several times faster than the engine-coordinated composite, because
// interaction enumeration/priority filtering collapse into plain guarded
// transitions.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/flatten.hpp"
#include "engine/engine.hpp"
#include "models/models.hpp"

namespace {

using namespace cbip;

void BM_EngineCoordinated(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const System sys = models::philosophersAtomic(n);
  RandomPolicy policy(5);
  for (auto _ : state) {
    SequentialEngine engine(sys, policy);
    RunOptions opt;
    opt.maxSteps = 2000;
    opt.recordTrace = false;
    benchmark::DoNotOptimize(engine.run(opt));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_EngineCoordinated)->DenseRange(2, 8, 2);

void BM_Fused(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const FusedComponent fused = fuse(models::philosophersAtomic(n));
  for (auto _ : state) {
    AtomicState s = initialState(*fused.type);
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
      if (step(fused, s, rng).empty()) break;
    }
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_Fused)->DenseRange(2, 8, 2);

void BM_FusedProducerConsumer(benchmark::State& state) {
  const FusedComponent fused = fuse(models::producerConsumer(4));
  for (auto _ : state) {
    AtomicState s = initialState(*fused.type);
    Rng rng(9);
    for (int i = 0; i < 2000; ++i) step(fused, s, rng);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_FusedProducerConsumer);

void BM_EngineProducerConsumer(benchmark::State& state) {
  const System sys = models::producerConsumer(4);
  RandomPolicy policy(9);
  for (auto _ : state) {
    SequentialEngine engine(sys, policy);
    RunOptions opt;
    opt.maxSteps = 2000;
    opt.recordTrace = false;
    benchmark::DoNotOptimize(engine.run(opt));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_EngineProducerConsumer);

}  // namespace

BENCHMARK_MAIN();
