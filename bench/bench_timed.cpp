// E3 / E10 — timed systems: zone-graph analysis of the Fig 5.3 unit-delay
// automaton and the time-robustness / timing-anomaly experiment of [1].
#include <benchmark/benchmark.h>

#include <cstdio>

#include "timed/models.hpp"
#include "timed/robustness.hpp"
#include "timed/timed.hpp"

namespace {

using namespace cbip;
using namespace cbip::timed;

void BM_UnitDelayZoneGraph(benchmark::State& state) {
  const int period = static_cast<int>(state.range(0));
  const TimedSystem sys = unitDelaySystem(period);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zoneReachability(sys));
  }
}
BENCHMARK(BM_UnitDelayZoneGraph)->Arg(1)->Arg(3)->Arg(10);

void BM_PeriodicTasksZoneGraph(benchmark::State& state) {
  const TimedSystem sys = periodicTasks({10, 15}, {3, 4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(zoneReachability(sys));
  }
}
BENCHMARK(BM_PeriodicTasksZoneGraph);

void BM_ListScheduler(benchmark::State& state) {
  const Anomaly a = anomalyInstance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        listSchedule(a.graph, a.machines, a.priorityList, a.wcetDurations));
  }
}
BENCHMARK(BM_ListScheduler);

void printUnitDelayTable() {
  std::printf("\n== E3: Fig 5.3 unit delay y(t) = x(t-1), zone-graph analysis ==\n");
  std::printf("%8s %12s %12s %10s\n", "period", "zone states", "disc.states", "timelock");
  for (const int period : {1, 2, 3, 5, 10}) {
    const ZoneReachResult r = zoneReachability(unitDelaySystem(period));
    std::printf("%8d %12llu %12zu %10s\n", period,
                static_cast<unsigned long long>(r.zoneStates), r.discreteStates.size(),
                r.timelock ? "YES" : "no");
  }
}

void printAnomalyTable() {
  const Anomaly a = anomalyInstance();
  std::printf("\n== E10: timing anomaly — \"safety for WCET does not guarantee safety for "
              "smaller execution times\" ==\n");
  std::printf("instance: %zu tasks on %d machines\n", a.graph.tasks.size(), a.machines);
  std::printf("%6s %10s %10s %6s\n", "task", "WCET", "reduced", "deps");
  for (std::size_t t = 0; t < a.graph.tasks.size(); ++t) {
    std::printf("%6zu %10lld %10lld %6zu\n", t, static_cast<long long>(a.wcetDurations[t]),
                static_cast<long long>(a.reducedDurations[t]),
                a.graph.tasks[t].dependencies.size());
  }
  std::printf("greedy list schedule: makespan(WCET) = %lld, makespan(reduced) = %lld  "
              "<-- ANOMALY (faster tasks, later finish)\n",
              static_cast<long long>(a.wcetMakespan),
              static_cast<long long>(a.reducedMakespan));

  // Determinised (static) schedule: robust.
  const Schedule wcetList = listSchedule(a.graph, a.machines, a.priorityList, a.wcetDurations);
  std::vector<int> assignment, order;
  staticFromList(wcetList, assignment, order);
  const auto atW = staticSchedule(a.graph, a.machines, assignment, order, a.wcetDurations);
  const auto atR = staticSchedule(a.graph, a.machines, assignment, order, a.reducedDurations);
  std::printf("static (deterministic) schedule: makespan(WCET) = %lld, makespan(reduced) = "
              "%lld  <-- time-robust\n",
              static_cast<long long>(atW.makespan), static_cast<long long>(atR.makespan));

  // How common are anomalies? Random (instance, reduction) draws; on
  // every greedy anomaly found, cross-check that the determinized static
  // schedule of the same instance stays monotone.
  int greedyAnomalies = 0, staticAnomalies = 0;
  const int trials = 20'000;
  for (int round = 0; round < trials; ++round) {
    const auto found = findAnomaly(2, 8, 1, 0xAB0000 + static_cast<std::uint64_t>(round));
    if (!found.has_value()) continue;
    ++greedyAnomalies;
    const Schedule wl =
        listSchedule(found->graph, found->machines, found->priorityList, found->wcetDurations);
    std::vector<int> asg, ord;
    staticFromList(wl, asg, ord);
    const auto sW = staticSchedule(found->graph, found->machines, asg, ord,
                                   found->wcetDurations);
    const auto sR = staticSchedule(found->graph, found->machines, asg, ord,
                                   found->reducedDurations);
    if (sR.makespan > sW.makespan) ++staticAnomalies;
  }
  std::printf("random sweep (%d instance/reduction draws): greedy anomalies = %d "
              "(~1 in %d), static anomalies on the same instances = %d\n",
              trials, greedyAnomalies,
              greedyAnomalies > 0 ? trials / greedyAnomalies : trials, staticAnomalies);
  std::printf("periodic tasks (zone analysis): deadline misses surface as timelocks — see "
              "test_timed.cpp\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  printUnitDelayTable();
  printAnomalyTable();
  return 0;
}
