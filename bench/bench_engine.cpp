// E11 — single-thread vs multithread engine (Section 5.6: "one engine for
// real-time single-thread and one for multi-thread execution").
//
// The multithread engine pays a coordination cost (offer/execute message
// rounds through worker threads) and wins only when component actions
// carry real computation (workGrain) and interactions are independent.
// Shape: sequential wins at grain 0; multithread overtakes as grain grows
// on the independent-pairs workload; on fully conflicting workloads the
// batch size is 1 and multithread never wins.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analyze/analyze.hpp"
#include "core/semantics.hpp"
#include "engine/engine.hpp"
#include "engine/engine_mt.hpp"
#include "expr/compile.hpp"
#include "models/models.hpp"

namespace {

using namespace cbip;

/// n independent rendezvous pairs (maximally parallel workload).
System independentPairs(int pairs) {
  System sys;
  auto t = std::make_shared<AtomicType>("P");
  const int l = t->addLocation("l");
  const int n = t->addVariable("n", 0);
  const int p = t->addPort("p");
  t->addTransition(l, p, Expr::top(),
                   {expr::Assign{expr::VarRef{0, n}, Expr::local(n) + Expr::lit(1)}}, l);
  t->setInitialLocation(l);
  for (int i = 0; i < pairs; ++i) {
    const int a = sys.addInstance("a" + std::to_string(i), t);
    const int b = sys.addInstance("b" + std::to_string(i), t);
    sys.addConnector(rendezvous("sync" + std::to_string(i), {PortRef{a, 0}, PortRef{b, 0}}));
  }
  sys.validate();
  return sys;
}

void spinGrain(std::uint64_t grain) {
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < grain; ++i) sink = sink + i;
}

void BM_SequentialEngine(benchmark::State& state) {
  const System sys = independentPairs(8);
  const std::uint64_t grain = static_cast<std::uint64_t>(state.range(0));
  RandomPolicy policy(3);
  for (auto _ : state) {
    SequentialEngine engine(sys, policy);
    RunOptions opt;
    opt.maxSteps = 500;
    opt.recordTrace = false;
    // Model the same computation grain the MT workers would run: both
    // participants' action bodies execute serially here.
    opt.stopWhen = [grain](const GlobalState&) {
      spinGrain(2 * grain);
      return false;
    };
    benchmark::DoNotOptimize(engine.run(opt));
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_SequentialEngine)->Arg(0)->Arg(20000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_MultiThreadEngine(benchmark::State& state) {
  const System sys = independentPairs(8);
  const std::uint64_t grain = static_cast<std::uint64_t>(state.range(0));
  RandomPolicy policy(3);
  for (auto _ : state) {
    MultiThreadEngine engine(sys, policy);
    MtOptions opt;
    opt.maxSteps = 500;
    opt.recordTrace = false;
    opt.workGrain = grain;
    benchmark::DoNotOptimize(engine.run(opt));
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_MultiThreadEngine)->Arg(0)->Arg(20000)->Arg(100000)->Unit(benchmark::kMillisecond);

/// Guard/action-heavy workload: n counter pairs whose every transition
/// carries a non-trivial guard and a three-assignment action block, so the
/// per-step cost is dominated by data-sublanguage evaluation.
System dataHeavyPairs(int pairs) {
  System sys;
  auto t = std::make_shared<AtomicType>("D");
  const int l = t->addLocation("l");
  const int x = t->addVariable("x", 1);
  const int acc = t->addVariable("acc", 0);
  const int n = t->addVariable("n", 0);
  const int p = t->addPort("p", {x});
  t->addTransition(
      l, p,
      Expr::local(x) + Expr::local(acc) < Expr::lit(1'000'000) &&
          Expr::local(n) % Expr::lit(7) != Expr::lit(3),
      {expr::Assign{expr::VarRef{0, acc},
                    (Expr::local(acc) * Expr::lit(3) + Expr::local(x)) % Expr::lit(257)},
       expr::Assign{expr::VarRef{0, x},
                    Expr::max(Expr::local(x), Expr::abs(Expr::local(acc) - Expr::local(n)))},
       expr::Assign{expr::VarRef{0, n}, Expr::local(n) + Expr::lit(1)}},
      l);
  // A fallback transition keeps the system live when the first guard
  // flips off (n % 7 == 3).
  t->addTransition(l, p, Expr::top(),
                   {expr::Assign{expr::VarRef{0, n}, Expr::local(n) + Expr::lit(1)}}, l);
  t->setInitialLocation(l);
  for (int i = 0; i < pairs; ++i) {
    const int a = sys.addInstance("a" + std::to_string(i), t);
    const int b = sys.addInstance("b" + std::to_string(i), t);
    Connector c("sync" + std::to_string(i));
    const int ea = c.addSynchron(PortRef{a, 0});
    const int eb = c.addSynchron(PortRef{b, 0});
    c.setGuard(Expr::var(ea, 0) + Expr::var(eb, 0) > Expr::lit(0));
    sys.addConnector(std::move(c));
  }
  sys.validate();
  return sys;
}

/// Engine-step cost with the bytecode evaluator (arg 1) vs the
/// tree-walking interpreter escape hatch (arg 0); identical traces.
void BM_SequentialEngineCompiledVsInterpreted(benchmark::State& state) {
  const System sys = dataHeavyPairs(8);
  const bool compiled = state.range(0) != 0;
  const bool saved = expr::compilationEnabled();
  expr::setCompilationEnabled(compiled);
  RandomPolicy policy(3);
  for (auto _ : state) {
    SequentialEngine engine(sys, policy);
    RunOptions opt;
    opt.maxSteps = 500;
    opt.recordTrace = false;
    benchmark::DoNotOptimize(engine.run(opt));
  }
  expr::setCompilationEnabled(saved);
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_SequentialEngineCompiledVsInterpreted)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Tau-heavy workload: every interaction arms a cascade of internal
/// (tau) transitions whose guards and actions share arithmetic — the
/// guard-then-fire shape runInternal dispatches, and therefore the
/// workload where fusing guard + action block into one program (single
/// dispatch, cross-boundary CSE) pays directly.
System tauCascadePairs(int pairs) {
  System sys;
  auto t = std::make_shared<AtomicType>("Tau");
  const int l = t->addLocation("l");
  const int x = t->addVariable("x", 1);
  const int acc = t->addVariable("acc", 0);
  const int k = t->addVariable("k", 0);
  const int p = t->addPort("p", {x});
  // The sync transition arms the cascade.
  t->addTransition(l, p, Expr::top(), {expr::Assign{expr::VarRef{0, k}, Expr::lit(8)}}, l);
  // Tau 1: guard and action share (acc * 7 + x) % 13.
  const Expr mix = (Expr::local(acc) * Expr::lit(7) + Expr::local(x)) % Expr::lit(13);
  t->addTransition(
      l, kInternalPort, Expr::local(k) > Expr::lit(0) && mix != Expr::lit(5),
      {expr::Assign{expr::VarRef{0, acc}, mix + Expr::local(acc) % Expr::lit(101)},
       expr::Assign{expr::VarRef{0, x}, Expr::local(x) + Expr::lit(1)},
       expr::Assign{expr::VarRef{0, k}, Expr::local(k) - Expr::lit(1)}},
      l);
  // Tau 2: fallback keeps the cascade draining when tau 1's guard flips.
  t->addTransition(l, kInternalPort, Expr::local(k) > Expr::lit(0),
                   {expr::Assign{expr::VarRef{0, k}, Expr::local(k) - Expr::lit(1)}}, l);
  t->setInitialLocation(l);
  for (int i = 0; i < pairs; ++i) {
    const int a = sys.addInstance("a" + std::to_string(i), t);
    const int b = sys.addInstance("b" + std::to_string(i), t);
    sys.addConnector(rendezvous("sync" + std::to_string(i), {PortRef{a, 0}, PortRef{b, 0}}));
  }
  sys.validate();
  return sys;
}

/// Engine-step cost with fused guard+action dispatch (arg 1) vs the
/// unfused guard-program + per-action-program dispatch (arg 0);
/// identical traces. Every step triggers two 8-deep tau cascades, so the
/// ratio isolates the fused tryFire / action-block win.
void BM_SequentialEngineFusedVsUnfused(benchmark::State& state) {
  const System sys = tauCascadePairs(8);
  const bool fused = state.range(0) != 0;
  const bool saved = expr::fusionEnabled();
  expr::setFusionEnabled(fused);
  RandomPolicy policy(3);
  // Engine constructed once: the measurement is the step loop (scan +
  // dispatch), not per-run validation.
  SequentialEngine engine(sys, policy);
  for (auto _ : state) {
    RunOptions opt;
    opt.maxSteps = 500;
    opt.recordTrace = false;
    benchmark::DoNotOptimize(engine.run(opt));
  }
  expr::setFusionEnabled(saved);
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_SequentialEngineFusedVsUnfused)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Engine-step cost with the accelerated VM cores (arg 1: computed-goto
/// direct-threaded dispatch + block-parallel batch scan) vs the portable
/// switch interpreter core (arg 0, the CBIP_NO_THREADED escape hatch);
/// identical traces. The guard/action-heavy workload makes per-opcode
/// dispatch the dominant per-step cost, so this ratio isolates the
/// threaded-VM win at the engine level.
void BM_SequentialEngineThreadedVsSwitch(benchmark::State& state) {
  const System sys = dataHeavyPairs(8);
  const bool saved = expr::threadedDispatchEnabled();
  expr::setThreadedDispatchEnabled(state.range(0) != 0);
  RandomPolicy policy(3);
  SequentialEngine engine(sys, policy);
  for (auto _ : state) {
    RunOptions opt;
    opt.maxSteps = 500;
    opt.recordTrace = false;
    benchmark::DoNotOptimize(engine.run(opt));
  }
  expr::setThreadedDispatchEnabled(saved);
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_SequentialEngineThreadedVsSwitch)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Analysis-friendly workload: every live guard and action is full of
/// literal-divisor div/mod sites (relaxed to unchecked opcodes at build
/// time), and each scanned location carries arithmetically dead port
/// transitions (x % 4 > 10) whose guard programs the analyzer folds to a
/// single constant push.
System analyzablePairs(int pairs) {
  System sys;
  auto t = std::make_shared<AtomicType>("A");
  const int l = t->addLocation("l");
  const int x = t->addVariable("x", 1);
  const int acc = t->addVariable("acc", 0);
  const int p = t->addPort("p", {x});
  t->addTransition(
      l, p, Expr::local(x) % Expr::lit(64) < Expr::lit(60),
      {expr::Assign{expr::VarRef{0, acc},
                    (Expr::local(acc) * Expr::lit(3) + Expr::local(x) / Expr::lit(2)) %
                        Expr::lit(257)},
       expr::Assign{expr::VarRef{0, x},
                    (Expr::local(x) + Expr::local(acc) / Expr::lit(4)) % Expr::lit(101) +
                        Expr::lit(1)}},
      l);
  // Fallback keeps the pair live when the main guard flips off.
  t->addTransition(l, p, Expr::top(),
                   {expr::Assign{expr::VarRef{0, x}, Expr::local(x) + Expr::lit(1)}}, l);
  // Dead transitions, evaluated by every enabled-set scan when unpruned.
  for (int d = 0; d < 4; ++d) {
    t->addTransition(l, p,
                     (Expr::local(x) + Expr::lit(d)) % Expr::lit(4) > Expr::lit(10),
                     {expr::Assign{expr::VarRef{0, x}, Expr::lit(0)}}, l);
  }
  t->setInitialLocation(l);
  for (int i = 0; i < pairs; ++i) {
    const int a = sys.addInstance("a" + std::to_string(i), t);
    const int b = sys.addInstance("b" + std::to_string(i), t);
    Connector c("sync" + std::to_string(i));
    const int ea = c.addSynchron(PortRef{a, 0});
    const int eb = c.addSynchron(PortRef{b, 0});
    c.setGuard((Expr::var(ea, 0) + Expr::var(eb, 0)) % Expr::lit(7) != Expr::lit(5));
    sys.addConnector(std::move(c));
  }
  sys.validate();
  return sys;
}

/// Engine-step cost with analysis-guided build-time pruning (arg 1:
/// relaxed division checks, constant-folded dead guards) vs the plain
/// compiled build (arg 0); identical traces. The system is built inside
/// the toggle because the analysis runs when a type first compiles.
void BM_SequentialEngineAnalyzedVsUnanalyzed(benchmark::State& state) {
  const bool analyzed = state.range(0) != 0;
  const bool saved = expr::analysisEnabled();
  expr::setAnalysisEnabled(analyzed);
  const System sys = analyzablePairs(8);
  RandomPolicy policy(3);
  SequentialEngine engine(sys, policy);
  for (auto _ : state) {
    RunOptions opt;
    opt.maxSteps = 500;
    opt.recordTrace = false;
    benchmark::DoNotOptimize(engine.run(opt));
  }
  expr::setAnalysisEnabled(saved);
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_SequentialEngineAnalyzedVsUnanalyzed)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Enabled-set-scan throughput, batched (arg1 = 1, CompiledConnector::
/// scanEnabled over one gathered frame) vs scalar (arg1 = 0, per-end
/// vectors + per-mask end loop), full recompute of every connector at
/// arg0 = 128 / 256 components. items/s = connector scans per second;
/// the acceptance shape for this PR is >= 1.5x batched over scalar.
void BM_EnabledScan(benchmark::State& state) {
  const System sys = models::philosophersAtomic(static_cast<int>(state.range(0)) / 2);
  const bool saved = batchScanEnabled();
  setBatchScanEnabled(state.range(1) != 0);
  sys.warmIndices();
  const GlobalState g = initialState(sys);
  EnabledInteractionCache cache(sys);
  for (auto _ : state) {
    cache.reset(g);
    benchmark::DoNotOptimize(cache.enabled().size());
  }
  setBatchScanEnabled(saved);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(sys.connectorCount()));
}
BENCHMARK(BM_EnabledScan)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Unit(benchmark::kMillisecond);

/// Same scan comparison on a guard-heavy shape (every transition and
/// connector carries a non-trivial guard), where the batch pass spends
/// its time in ExprProgram::runBatch rather than in list bookkeeping.
void BM_EnabledScanDataHeavy(benchmark::State& state) {
  const System sys = dataHeavyPairs(static_cast<int>(state.range(0)) / 2);
  const bool saved = batchScanEnabled();
  setBatchScanEnabled(state.range(1) != 0);
  sys.warmIndices();
  const GlobalState g = initialState(sys);
  EnabledInteractionCache cache(sys);
  for (auto _ : state) {
    cache.reset(g);
    benchmark::DoNotOptimize(cache.enabled().size());
  }
  setBatchScanEnabled(saved);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(sys.connectorCount()));
}
BENCHMARK(BM_EnabledScanDataHeavy)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Unit(benchmark::kMillisecond);

void BM_MultiThreadConflicting(benchmark::State& state) {
  // Philosophers: neighbouring interactions conflict, batches shrink.
  const System sys = models::philosophersAtomic(8);
  RandomPolicy policy(3);
  for (auto _ : state) {
    MultiThreadEngine engine(sys, policy);
    MtOptions opt;
    opt.maxSteps = 300;
    opt.recordTrace = false;
    opt.workGrain = static_cast<std::uint64_t>(state.range(0));
    benchmark::DoNotOptimize(engine.run(opt));
  }
  state.SetItemsProcessed(state.iterations() * 300);
}
BENCHMARK(BM_MultiThreadConflicting)->Arg(0)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
