// cbip-verify: the D-Finder certification front door.
//
// Loads a builtin model or a .bip file and runs the compositional
// deadlock-freedom check (src/verify/dfinder.hpp), printing the verdict,
// the certification ingredients (traps, SAT statistics) and — on a
// potential deadlock — the witness control locations:
//
//   cbip-verify --model philosophers --n 256 --expect deadlock-free
//   cbip-verify examples/models/mutex.bip
//
// Builtin models: philosophers (atomic-grab, deadlock-free),
// philosophers2 (two-step, can deadlock), gas (gas station), tokenring,
// skewed. Any other --model value (or a bare positional argument) is
// treated as a path to a .bip model file.
//
// --expect turns the run into a gate: exit 0 when the verdict matches,
// 1 when it does not. CI uses this to fail on any regression from
// DEADLOCK_FREE over examples/models/ and the 256-component bench
// models. --legacy selects the reference pipeline (tree-walking
// invariants, serial, fresh encoding per round) for differential runs.
//
// Exit codes: 0 = verdict matches --expect (or no --expect), 1 =
// verdict mismatch, 2 = bad usage / load failure.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "frontends/bipdsl/bipdsl.hpp"
#include "models/models.hpp"
#include "util/require.hpp"
#include "verify/dfinder.hpp"

namespace {

using namespace cbip;

struct Options {
  std::string model;
  int n = 8;
  std::string expect;  // "", "deadlock-free" or "potential-deadlock"
  bool legacy = false;
  int workers = 0;
};

int usage() {
  std::cerr << "usage: cbip-verify [--model <name|file.bip>] [--n N]\n"
               "                   [--expect deadlock-free|potential-deadlock]\n"
               "                   [--legacy] [--workers K] [file.bip]\n";
  return 2;
}

std::optional<System> loadModel(const Options& opt) {
  if (opt.model == "philosophers") return models::philosophersAtomic(opt.n);
  if (opt.model == "philosophers2") return models::philosophersTwoStep(opt.n);
  if (opt.model == "gas") return models::gasStation(opt.n, opt.n);
  if (opt.model == "tokenring") return models::tokenRing(opt.n);
  if (opt.model == "skewed") return models::skewedPairs(opt.n, std::max(1, opt.n / 8), 4);
  std::ifstream in(opt.model);
  if (!in) {
    std::cerr << "cbip-verify: cannot open model file " << opt.model << "\n";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    dsl::ParseResult parsed = dsl::parseModel(buf.str());
    parsed.system.validate();
    return std::move(parsed.system);
  } catch (const ModelError& e) {
    std::cerr << "cbip-verify: " << opt.model << ": " << e.what() << "\n";
    return std::nullopt;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--model" && (v = value())) opt.model = v;
    else if (arg == "--n" && (v = value())) opt.n = std::stoi(v);
    else if (arg == "--expect" && (v = value())) opt.expect = v;
    else if (arg == "--legacy") opt.legacy = true;
    else if (arg == "--workers" && (v = value())) opt.workers = std::stoi(v);
    else if (!arg.empty() && arg[0] != '-' && opt.model.empty()) opt.model = arg;
    else return usage();
  }
  if (opt.model.empty()) return usage();
  if (!opt.expect.empty() && opt.expect != "deadlock-free" &&
      opt.expect != "potential-deadlock") {
    return usage();
  }

  std::optional<System> system = loadModel(opt);
  if (!system) return 2;

  verify::DFinderOptions options;
  options.legacyPipeline = opt.legacy;
  options.workers = opt.workers;
  verify::DFinderResult result;
  try {
    result = verify::checkDeadlockFreedom(*system, options);
  } catch (const std::exception& e) {
    std::cerr << "cbip-verify: check failed: " << e.what() << "\n";
    return 2;
  }

  const bool free = result.verdict == verify::DFinderVerdict::kDeadlockFree;
  std::cout << "cbip-verify: " << opt.model << " (" << system->instanceCount()
            << " components): " << (free ? "DEADLOCK_FREE" : "POTENTIAL_DEADLOCK") << "\n"
            << "  traps=" << result.traps.size() << " vars=" << result.booleanVariables
            << " conflicts=" << result.satConflicts << " decisions=" << result.satDecisions
            << " pipeline=" << (opt.legacy ? "legacy" : "fast") << "\n";
  if (!free && !result.witnessLocations.empty()) {
    std::cout << "  witness:";
    for (std::size_t i = 0; i < result.witnessLocations.size(); ++i) {
      const System::Instance& inst = system->instance(i);
      std::cout << " " << inst.name << "@"
                << inst.type->locationName(result.witnessLocations[i]);
    }
    std::cout << "\n";
  }

  if (opt.expect.empty()) return 0;
  const bool match = free == (opt.expect == "deadlock-free");
  if (!match) {
    std::cerr << "cbip-verify: verdict mismatch: expected " << opt.expect << "\n";
  }
  return match ? 0 : 1;
}
