// cbip-lint: static analysis front door for BIP models.
//
// Loads each model file through the bipdsl frontend and runs the
// abstract-interpretation linter (src/analyze/lint.hpp) over every
// component type and connector, printing one line per diagnostic:
//
//     path: atom T, transition #2 (a --p--> b): [dead-transition] guard ...
//
// Atoms that the model never instantiates are linted in isolation too —
// a library file of atom definitions is a valid lint target.
//
// Exit codes: 0 = clean, 1 = diagnostics found, 2 = I/O or parse error.
// CI runs this over examples/models/ as a zero-diagnostic gate.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/lint.hpp"
#include "frontends/bipdsl/bipdsl.hpp"
#include "util/require.hpp"
#include "verify/lint.hpp"

namespace {

int lintFile(const std::string& path, std::size_t& diagnostics) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << path << ": cannot open file\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  cbip::dsl::ParseResult parsed;
  try {
    parsed = cbip::dsl::parseModel(buf.str());
    parsed.system.validate();
  } catch (const cbip::ModelError& e) {
    std::cerr << path << ": " << e.what() << "\n";
    return 2;
  }
  std::vector<cbip::analyze::Diagnostic> diags =
      cbip::analyze::lintSystem(parsed.system);
  // Verification-fed lints (unreachable locations, never-enabled
  // interactions) need at least one instance to have invariants about.
  if (parsed.system.instanceCount() > 0) {
    std::vector<cbip::analyze::Diagnostic> verifyDiags =
        cbip::verify::lintVerify(parsed.system);
    diags.insert(diags.end(), verifyDiags.begin(), verifyDiags.end());
  }
  // Atoms the system section never instantiated still deserve a lint
  // pass (lintSystem only sees instantiated types).
  for (const auto& [name, type] : parsed.atoms) {
    bool instantiated = false;
    for (const cbip::System::Instance& inst : parsed.system.instances()) {
      instantiated = instantiated || inst.type.get() == type.get();
    }
    if (instantiated) continue;
    std::vector<cbip::analyze::Diagnostic> typeDiags = cbip::analyze::lintType(*type);
    diags.insert(diags.end(), typeDiags.begin(), typeDiags.end());
  }
  for (const cbip::analyze::Diagnostic& d : diags) {
    std::cout << path << ": " << cbip::analyze::toString(d) << "\n";
  }
  diagnostics += diags.size();
  return diags.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: cbip-lint <model.bip>...\n";
    return 2;
  }
  int worst = 0;
  std::size_t diagnostics = 0;
  for (int i = 1; i < argc; ++i) {
    const int rc = lintFile(argv[i], diagnostics);
    worst = std::max(worst, rc);
  }
  if (worst == 0) {
    std::cout << "cbip-lint: " << (argc - 1) << " model(s) clean\n";
  } else if (diagnostics > 0) {
    std::cout << "cbip-lint: " << diagnostics << " diagnostic(s)\n";
  }
  return worst;
}
