#!/usr/bin/env bash
# Ratcheted clang-tidy driver: lint only the .cpp files the current
# change touches (vs the merge base), with warnings promoted to errors.
# New and modified code must be clean under .clang-tidy; untouched files
# are never revisited, so adopting stricter checks needs no tree-wide
# cleanup first.
#
# Usage: tools/run_clang_tidy.sh BUILD_DIR [BASE_REF]
#   BUILD_DIR  cmake build directory containing compile_commands.json
#   BASE_REF   diff base (default: merge-base with origin/main, falling
#              back to HEAD~1 on shallow or detached checkouts)
set -euo pipefail

BUILD_DIR=${1:?usage: $0 BUILD_DIR [BASE_REF]}
BASE_REF=${2:-}

if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "error: $BUILD_DIR/compile_commands.json not found" \
       "(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
  exit 2
fi

if [[ -z "$BASE_REF" ]]; then
  BASE_REF=$(git merge-base origin/main HEAD 2>/dev/null) ||
    BASE_REF=$(git rev-parse HEAD~1 2>/dev/null) ||
    BASE_REF=""
  # Direct push to main: the merge base IS HEAD and the diff would be
  # empty — ratchet over the pushed commit instead.
  if [[ -n "$BASE_REF" && "$BASE_REF" == "$(git rev-parse HEAD)" ]]; then
    BASE_REF=$(git rev-parse HEAD~1 2>/dev/null) || BASE_REF=""
  fi
fi

# Touched .cpp files under the linted roots. Only translation units: a
# header edit shows up through the TUs that include it on the next touch,
# and headers alone have no compile command to lint against.
if [[ -n "$BASE_REF" ]]; then
  mapfile -t files < <(git diff --name-only --diff-filter=d "$BASE_REF"...HEAD -- \
    'src/**/*.cpp' 'tools/*.cpp' | sort -u)
else
  # No usable base (fresh history): lint everything once.
  mapfile -t files < <(git ls-files 'src/**/*.cpp' 'tools/*.cpp' | sort -u)
fi

# The verification and SAT layers are kept tidy-clean as a whole, not
# just on touch: the parallel portfolio and the solver's invariants are
# exactly where the concurrency-* checks earn their keep, so these files
# are always linted regardless of the diff.
mapfile -t files < <(printf '%s\n' "${files[@]+"${files[@]}"}" |
  cat - <(git ls-files 'src/verify/*.cpp' 'src/sat/*.cpp') | sed '/^$/d' | sort -u)

if [[ ${#files[@]} -eq 0 ]]; then
  echo "run_clang_tidy: no touched .cpp files vs ${BASE_REF:-<none>}; nothing to lint"
  exit 0
fi

echo "run_clang_tidy: linting ${#files[@]} file(s) vs ${BASE_REF:-<full tree>}:"
printf '  %s\n' "${files[@]}"

clang-tidy -p "$BUILD_DIR" --warnings-as-errors='*' --quiet "${files[@]}"
echo "run_clang_tidy: clean"
