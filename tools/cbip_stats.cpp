// cbip-stats: run a model on any engine and dump the telemetry snapshot.
//
// The observability front door (src/obs): loads a builtin model or a
// .bip file, runs it through the chosen engine, and prints one JSON
// object with the run outcome, the sharded engine's per-shard load
// statistics, and the full obs counters snapshot. With --trace it also
// writes a Chrome trace-event timeline of the sharded epochs — load the
// file via chrome://tracing or drop it into ui.perfetto.dev.
//
//   cbip-stats --model philosophers --n 16 --engine sharded --shards 4
//              --steps 2000 --trace epochs.json
//
// Builtin models: philosophers (atomic-grab, deadlock-free),
// philosophers2 (two-step, can deadlock), gas (gas station),
// prodcons (bounded buffer), tokenring. Any other --model value is
// treated as a path to a .bip model file.
//
// Exit codes: 0 = ran, 2 = bad usage / load failure.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "engine/engine.hpp"
#include "engine/engine_mt.hpp"
#include "frontends/bipdsl/bipdsl.hpp"
#include "models/models.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "shard/engine_sharded.hpp"
#include "util/require.hpp"

namespace {

using namespace cbip;

struct Options {
  std::string model = "philosophers";
  int n = 8;
  std::string engine = "sharded";
  std::size_t shards = 2;
  std::uint64_t steps = 1000;
  std::uint64_t seed = 0;
  bool rebalance = true;        // sharded only: the whole adaptive layer
  std::string jsonPath = "-";   // "-" = stdout
  std::string tracePath;        // empty = no trace
};

int usage() {
  std::cerr << "usage: cbip-stats [--model <name|file.bip>] [--n N] "
               "[--engine seq|mt|sharded]\n"
               "                  [--shards K] [--steps N] [--seed S] "
               "[--rebalance on|off]\n"
               "                  [--json <path|->] [--trace <path>]\n";
  return 2;
}

std::optional<System> loadModel(const Options& opt) {
  if (opt.model == "philosophers") return models::philosophersAtomic(opt.n);
  if (opt.model == "philosophers2") return models::philosophersTwoStep(opt.n);
  if (opt.model == "gas") return models::gasStation(opt.n, opt.n);
  if (opt.model == "prodcons") return models::producerConsumer(opt.n);
  if (opt.model == "tokenring") return models::tokenRing(opt.n);
  // Skewed-load pairs (the rebalancer's benchmark family): n pairs, 1/8
  // hot, the rest dead after 4 steps each.
  if (opt.model == "skewed") {
    return models::skewedPairs(opt.n, std::max(1, opt.n / 8), 4);
  }
  std::ifstream in(opt.model);
  if (!in) {
    std::cerr << "cbip-stats: cannot open model file " << opt.model << "\n";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    dsl::ParseResult parsed = dsl::parseModel(buf.str());
    parsed.system.validate();
    return std::move(parsed.system);
  } catch (const ModelError& e) {
    std::cerr << "cbip-stats: " << opt.model << ": " << e.what() << "\n";
    return std::nullopt;
  }
}

void appendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--model" && (v = value())) opt.model = v;
    else if (arg == "--n" && (v = value())) opt.n = std::stoi(v);
    else if (arg == "--engine" && (v = value())) opt.engine = v;
    else if (arg == "--shards" && (v = value())) opt.shards = std::stoul(v);
    else if (arg == "--steps" && (v = value())) opt.steps = std::stoull(v);
    else if (arg == "--seed" && (v = value())) opt.seed = std::stoull(v);
    else if (arg == "--rebalance" && (v = value())) {
      const std::string mode = v;
      if (mode != "on" && mode != "off") return usage();
      opt.rebalance = mode == "on";
    }
    else if (arg == "--json" && (v = value())) opt.jsonPath = v;
    else if (arg == "--trace" && (v = value())) opt.tracePath = v;
    else return usage();
  }
  if (opt.engine != "seq" && opt.engine != "mt" && opt.engine != "sharded") return usage();

  std::optional<System> system = loadModel(opt);
  if (!system) return 2;

  // Fresh counters for this run; the at-exit exporter and the snapshot
  // below then report exactly this run's activity.
  obs::resetAll();
  obs::TraceLog trace;
  if (!opt.tracePath.empty()) obs::setTraceSink(&trace);

  // All three engines are driven through the shared Engine interface:
  // engine-specific knobs (seed, shard count, rebalancing) are preset on
  // the concrete engine's defaultOptions() template, then the run itself
  // only sees the portable EngineOptions core.
  RandomPolicy policy(opt.seed);
  std::optional<SequentialEngine> seqEngine;
  std::optional<MultiThreadEngine> mtEngine;
  std::optional<shard::ShardedEngine> shardedEngine;
  Engine* engine = nullptr;
  if (opt.engine == "seq") {
    engine = &seqEngine.emplace(*system, policy);
  } else if (opt.engine == "mt") {
    engine = &mtEngine.emplace(*system, policy);
  } else {
    shard::ShardedEngine& se = shardedEngine.emplace(*system, opt.shards);
    se.defaultOptions().seed = opt.seed;
    se.defaultOptions().rebalance = opt.rebalance;
    se.defaultOptions().workStealing = opt.rebalance;
    engine = &se;
  }

  RunResult result;
  std::optional<shard::ShardedStats> shardStats;
  try {
    EngineOptions options;
    options.maxSteps = opt.steps;
    options.recordTrace = false;
    result = engine->run(options);
    if (shardedEngine) shardStats = shardedEngine->lastRunStats();
  } catch (const std::exception& e) {
    obs::setTraceSink(nullptr);
    std::cerr << "cbip-stats: run failed: " << e.what() << "\n";
    return 2;
  }
  obs::setTraceSink(nullptr);
  const RunStats& runStats = engine->lastRunStats();

  std::string out = "{\"model\":\"";
  appendEscaped(out, opt.model);
  out += "\",\"engine\":\"" + opt.engine + "\"";
  out += ",\"steps\":" + std::to_string(result.steps);
  out += ",\"reason\":\"" + std::string(to_string(result.reason)) + "\"";
  // Portable RunStats core — present for every engine (scan_rounds means
  // steps on seq, scheduler cycles on mt, epochs on sharded).
  out += ",\"stats\":{\"steps\":" + std::to_string(runStats.steps);
  out += ",\"scan_rounds\":" + std::to_string(runStats.scanRounds);
  out += ",\"wall_ns\":" + std::to_string(runStats.wallNs) + "}";
  if (shardStats) {
    const shard::ShardedStats& st = *shardStats;
    out += ",\"rebalance\":{\"enabled\":" + std::string(opt.rebalance ? "true" : "false");
    out += ",\"decisions\":" + std::to_string(st.rebalanceDecisions);
    out += ",\"components_moved\":" + std::to_string(st.componentsMoved);
    out += ",\"steal_events\":" + std::to_string(st.stealEvents) + "}";
    out += ",\"sharded\":{\"epochs\":" + std::to_string(st.epochs);
    out += ",\"stalled_epochs\":" + std::to_string(st.stalledEpochs);
    out += ",\"cross_candidates\":" + std::to_string(st.crossCandidates);
    out += ",\"cross_accepted\":" + std::to_string(st.crossAccepted);
    out += ",\"cross_conflicts\":" + std::to_string(st.crossConflicts);
    out += ",\"shards\":[";
    for (std::size_t s = 0; s < st.shards.size(); ++s) {
      const shard::ShardedStats::Shard& sh = st.shards[s];
      if (s != 0) out += ",";
      out += "{\"steps\":" + std::to_string(sh.steps);
      out += ",\"local_steps\":" + std::to_string(sh.localSteps);
      out += ",\"cross_steps\":" + std::to_string(sh.crossSteps);
      out += ",\"stolen_steps\":" + std::to_string(sh.stolenSteps);
      out += ",\"migrated_in\":" + std::to_string(sh.migratedIn);
      out += ",\"migrated_out\":" + std::to_string(sh.migratedOut);
      out += ",\"idle_epochs\":" + std::to_string(sh.idleEpochs);
      out += ",\"quota_granted\":" + std::to_string(sh.quotaGranted);
      out += ",\"quota_unused\":" + std::to_string(sh.quotaUnused);
      out += ",\"plan_ns\":" + std::to_string(sh.planNs);
      out += ",\"cross_ns\":" + std::to_string(sh.crossNs);
      out += ",\"local_ns\":" + std::to_string(sh.localNs);
      out += ",\"idle_ns\":" + std::to_string(sh.idleNs);
      out += ",\"lock_wait_ns\":" + std::to_string(sh.lockWaitNs) + "}";
    }
    out += "]}";
  }
  out += ",\"obs\":" + obs::toJson(obs::snapshot()) + "}";

  if (opt.jsonPath == "-") {
    std::cout << out << "\n";
  } else {
    std::ofstream jf(opt.jsonPath);
    if (!jf) {
      std::cerr << "cbip-stats: cannot write " << opt.jsonPath << "\n";
      return 2;
    }
    jf << out << "\n";
  }
  if (!opt.tracePath.empty()) {
    std::ofstream tf(opt.tracePath);
    if (!tf) {
      std::cerr << "cbip-stats: cannot write " << opt.tracePath << "\n";
      return 2;
    }
    trace.write(tf);
  }
  return 0;
}
